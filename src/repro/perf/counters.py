"""Fast-path configuration and hit counters.

Both classes are plumbing shared by the similarity matcher, the
classifier, and the :class:`repro.core.engine.XMLSource` pipeline; they
carry no algorithmic behaviour of their own.
"""

from __future__ import annotations

from typing import Dict, Mapping, NamedTuple, Optional


class FastPathConfig(NamedTuple):
    """Which classification fast paths are active.

    Every tier is exact — disabling them changes speed, never results.
    Tiers 1 and 3 additionally disable themselves at runtime whenever a
    non-exact tag matcher (thesaurus) is installed or the similarity
    weights make the short-circuit unsound (``alpha``/``beta`` of 0),
    so a config with everything on is always safe to use.

    Parameters
    ----------
    validity_short_circuit:
        Tier 1: run the Glushkov validator before the span DP; a valid
        document scores 1.0 with a synthesized all-common evaluation.
    structural_cache:
        Tier 2: key matcher results by structural fingerprint (LRU
        bounded by ``structural_cache_size``) instead of element
        identity, sharing DP runs across identical subtrees and across
        documents.
    pruned_ranking:
        Tier 3: evaluate DTDs best-upper-bound-first in
        ``Classifier.classify`` and skip DTDs whose bound cannot beat
        the current best (the full exact ranking stays available — it
        is realized lazily on access).
    structural_cache_size:
        Maximum number of ``(declaration, mode, fingerprint)`` entries
        retained per matcher before LRU eviction.
    """

    validity_short_circuit: bool = True
    structural_cache: bool = True
    pruned_ranking: bool = True
    structural_cache_size: int = 4096

    @classmethod
    def disabled(cls) -> "FastPathConfig":
        """All fast paths off — the seed code path, for equivalence tests."""
        return cls(
            validity_short_circuit=False,
            structural_cache=False,
            pruned_ranking=False,
        )


#: the counter fields, in snapshot order (``_sources`` bookkeeping for
#: :meth:`PerfCounters.merge` is deliberately not a counter)
COUNTER_NAMES = (
    "documents_classified",
    "validations",
    "validity_short_circuits",
    "synthesized_evaluations",
    "structural_cache_hits",
    "structural_cache_misses",
    "structural_cache_evictions",
    "bound_skips",
    "dp_runs",
    "dp_cells",
)


class PerfCounters:
    """Mutable hit counters for the classification fast paths.

    One instance is shared by a classifier, its matchers, and its
    recorders, so a single snapshot describes the whole pipeline.
    Counting is unconditional and cheap (integer increments); benchmarks
    and tests read the counters to assert the fast paths actually fire.

    Counters from other processes (parallel classification workers)
    fold in through :meth:`merge`, which is commutative and — when the
    reporter passes a stable ``key`` — duplicate-safe: a worker that
    re-reports its cumulative totals (every chunk result does, and a
    retried shard may report twice) contributes only the increment
    since its previous report.
    """

    __slots__ = COUNTER_NAMES + ("_sources",)

    def __init__(self) -> None:
        self._sources: Dict[str, Dict[str, int]] = {}
        self.reset()

    def reset(self) -> None:
        #: documents that went through ``Classifier.classify``
        self.documents_classified = 0
        #: tier-1 validator runs attempted
        self.validations = 0
        #: tier-1 hits: valid documents that skipped the span DP
        self.validity_short_circuits = 0
        #: tier-1 evaluations synthesized without any DP
        self.synthesized_evaluations = 0
        #: tier-2 fingerprint-cache hits (a whole DP run avoided)
        self.structural_cache_hits = 0
        #: tier-2 fingerprint-cache misses (DP ran, result interned)
        self.structural_cache_misses = 0
        #: tier-2 LRU evictions
        self.structural_cache_evictions = 0
        #: tier-3 DTDs skipped because their bound could not win
        self.bound_skips = 0
        #: span-DP invocations (one per element-against-declaration)
        self.dp_runs = 0
        #: span-DP memo cells computed (the quadratic work unit)
        self.dp_cells = 0
        self._sources.clear()

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (stable key order, JSON-friendly)."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def merge(
        self, snapshot: Mapping[str, int], key: Optional[str] = None
    ) -> Dict[str, int]:
        """Fold an externally produced counter snapshot into this one.

        Without ``key``, ``snapshot`` is a plain *delta* and is added
        as-is (commutative: merging deltas in any order yields the same
        totals).

        With ``key``, ``snapshot`` is the reporter's *cumulative*
        totals and the merge is duplicate-safe: only the increment over
        that key's previously merged snapshot is added, so the same
        report applied twice (a retried shard re-reporting, a worker
        reporting after every chunk) never double-counts.  Reporters'
        cumulative counters must be monotone, which per-process
        counters are by construction.

        Returns the increments actually applied (sparse).
        """
        if key is None:
            applied = {
                name: value for name, value in snapshot.items() if value
            }
        else:
            previous = self._sources.get(key, {})
            applied = {}
            for name, value in snapshot.items():
                increment = value - previous.get(name, 0)
                if increment:
                    applied[name] = increment
            self._sources[key] = dict(snapshot)
        for name, increment in applied.items():
            setattr(self, name, getattr(self, name) + increment)
        return applied

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"PerfCounters({inner})"
