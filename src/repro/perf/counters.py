"""Fast-path configuration, hit counters, and phase timers.

All classes are plumbing shared by the similarity matcher, the
classifier, the evolution phase, and the
:class:`repro.core.engine.XMLSource` pipeline; they carry no algorithmic
behaviour of their own.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, NamedTuple, Optional


class FastPathConfig(NamedTuple):
    """Which classification and evolution fast paths are active.

    Every tier is exact — disabling them changes speed, never results.
    Tiers 1 and 3 additionally disable themselves at runtime whenever a
    non-exact tag matcher (thesaurus) is installed or the similarity
    weights make the short-circuit unsound (``alpha``/``beta`` of 0),
    so a config with everything on is always safe to use.  The
    evolution-side paths likewise sit out whenever tag renames are in
    play or the soundness preconditions of the drain bound fail.

    Parameters
    ----------
    validity_short_circuit:
        Tier 1: run the Glushkov validator before the span DP; a valid
        document scores 1.0 with a synthesized all-common evaluation.
    structural_cache:
        Tier 2: key matcher results by structural fingerprint (LRU
        bounded by ``structural_cache_size``) instead of element
        identity, sharing DP runs across identical subtrees and across
        documents.
    pruned_ranking:
        Tier 3: evaluate DTDs best-upper-bound-first in
        ``Classifier.classify`` and skip DTDs whose bound cannot beat
        the current best (the full exact ranking stays available — it
        is realized lazily on access).
    incremental_evolution:
        Dirty-element tracking in the evolution phase: elements whose
        recorded aggregates fingerprint to the same value as at the
        previous evolution (and whose declaration and parameters are
        unchanged) replay the previous outcome instead of re-running
        window classification, mining and ``build_structure``.
    mined_rule_cache:
        LRU memo over ``mine_evolution_rules`` keyed by the
        transaction-multiset fingerprint and ``mu``, so identical
        evidence across elements, DTDs and evolutions never re-mines.
    pruned_drain:
        After an evolution, skip repository documents whose sound
        vocabulary-overlap upper bound against the evolved DTD stays
        below ``sigma`` — they provably cannot be recovered.
    structural_cache_size:
        Maximum number of ``(declaration, mode, fingerprint)`` entries
        retained per matcher before LRU eviction.
    """

    validity_short_circuit: bool = True
    structural_cache: bool = True
    pruned_ranking: bool = True
    incremental_evolution: bool = True
    mined_rule_cache: bool = True
    pruned_drain: bool = True
    structural_cache_size: int = 4096

    @classmethod
    def disabled(cls) -> "FastPathConfig":
        """All fast paths off — the seed code path, for equivalence tests."""
        return cls(
            validity_short_circuit=False,
            structural_cache=False,
            pruned_ranking=False,
            incremental_evolution=False,
            mined_rule_cache=False,
            pruned_drain=False,
        )


#: wall-clock phase timers (integer nanoseconds); they live in the same
#: snapshot/merge machinery as the counters, so event ``perf_delta``s
#: and worker reports carry them with no extra plumbing.
#: ``snapshot_serialize_ns`` is accumulated directly by the engine's
#: snapshot cache (not via :meth:`PerfCounters.timer`), so it never
#: mirrors a ``phase.*`` span.
TIMER_NAMES = (
    "evolve_ns",
    "evolve_mine_ns",
    "evolve_build_ns",
    "evolve_rewrite_ns",
    "evolve_restrict_ns",
    "drain_ns",
    "snapshot_serialize_ns",
)

#: the counter fields, in snapshot order (``_sources`` bookkeeping for
#: :meth:`PerfCounters.merge` is deliberately not a counter)
COUNTER_NAMES = (
    "documents_classified",
    "validations",
    "validity_short_circuits",
    "synthesized_evaluations",
    "structural_cache_hits",
    "structural_cache_misses",
    "structural_cache_evictions",
    "bound_skips",
    "dp_runs",
    "dp_cells",
    "evolution_element_skips",
    "mined_rule_hits",
    "mined_rule_misses",
    "drain_prune_skips",
    "drain_index_hits",
    "index_rows",
    "shard_skips",
    "shard_fanout_epochs",
    "pool_spinups",
    "pool_reuses",
    "snapshot_builds",
    "snapshot_reuses",
    "snapshot_bytes_total",
    "ingest_batch_commits",
    "segments_compacted",
    "compaction_bytes_reclaimed",
) + TIMER_NAMES


class PerfCounters:
    """Mutable hit counters and phase timers for the fast paths.

    One instance is shared by a classifier, its matchers, its recorders,
    and the evolution phase, so a single snapshot describes the whole
    pipeline.  Counting is unconditional and cheap (integer increments);
    benchmarks and tests read the counters to assert the fast paths
    actually fire.

    Counters from other processes (parallel classification workers)
    fold in through :meth:`merge`, which is commutative and — when the
    reporter passes a stable ``key`` — duplicate-safe: a worker that
    re-reports its cumulative totals (every chunk result does, and a
    retried shard may report twice) contributes only the increment
    since its previous report.

    Timers (:data:`TIMER_NAMES`) accumulate monotonic wall-clock
    nanoseconds via the :meth:`timer` context manager.  They are plain
    monotone integers, so snapshot/merge/keyed-diff semantics apply to
    them unchanged; nested spans of the *same* timer count once (only
    the outermost span accumulates), while differently named spans may
    overlap freely (``evolve_ns`` wraps the per-phase timers, so it is
    always at least their sum for non-overlapping phases).
    """

    __slots__ = COUNTER_NAMES + ("_sources", "_active_timers", "_span_sink")

    def __init__(self) -> None:
        self._sources: Dict[str, Dict[str, int]] = {}
        self._active_timers: Dict[str, int] = {}
        #: an enabled tracer, when the engine wants phase spans mirrored
        #: off the same timers (see :meth:`set_span_sink`)
        self._span_sink = None
        self.reset()

    def reset(self) -> None:
        #: documents that went through ``Classifier.classify``
        self.documents_classified = 0
        #: tier-1 validator runs attempted
        self.validations = 0
        #: tier-1 hits: valid documents that skipped the span DP
        self.validity_short_circuits = 0
        #: tier-1 evaluations synthesized without any DP
        self.synthesized_evaluations = 0
        #: tier-2 fingerprint-cache hits (a whole DP run avoided)
        self.structural_cache_hits = 0
        #: tier-2 fingerprint-cache misses (DP ran, result interned)
        self.structural_cache_misses = 0
        #: tier-2 LRU evictions
        self.structural_cache_evictions = 0
        #: tier-3 DTDs skipped because their bound could not win
        self.bound_skips = 0
        #: span-DP invocations (one per element-against-declaration)
        self.dp_runs = 0
        #: span-DP memo cells computed (the quadratic work unit)
        self.dp_cells = 0
        #: elements that replayed their previous evolution outcome
        #: (window classification, mining and build skipped)
        self.evolution_element_skips = 0
        #: mined-rule memo hits (a whole mining run avoided)
        self.mined_rule_hits = 0
        #: mined-rule memo misses (mining ran, rules interned)
        self.mined_rule_misses = 0
        #: repository documents skipped by the pruned post-evolution
        #: drain (provably still below sigma)
        self.drain_prune_skips = 0
        #: post-evolution drains answered by a store index query
        #: instead of a whole-repository scan
        self.drain_index_hits = 0
        #: candidate rows returned by store index queries (the documents
        #: an indexed drain actually examined)
        self.index_rows = 0
        #: DTD shards screened out before ranking (every member provably
        #: scores 0.0 against the document)
        self.shard_skips = 0
        #: parallel epochs that fanned classification out per DTD shard
        #: (workers rebuilt only their shard's DTD subset)
        self.shard_fanout_epochs = 0
        #: worker-pool executors created (a persistent pool spins up
        #: once and is reused across batches; rebuilds after a broken
        #: pool count again)
        self.pool_spinups = 0
        #: parallel batches that found a live executor already waiting
        self.pool_reuses = 0
        #: classifier snapshots actually pickled (one per changed epoch)
        self.snapshot_builds = 0
        #: epochs that reused the cached snapshot bytes unchanged
        self.snapshot_reuses = 0
        #: cumulative pickled-snapshot bytes across all builds
        self.snapshot_bytes_total = 0
        #: store commits that covered a whole deposit batch (``add_many``
        #: or a ``bulk()`` window) instead of one document
        self.ingest_batch_commits = 0
        #: JsonlStore segments rewritten by compaction (tombstoned
        #: records physically dropped)
        self.segments_compacted = 0
        #: bytes of tombstoned records reclaimed by segment compaction
        self.compaction_bytes_reclaimed = 0
        for name in TIMER_NAMES:
            setattr(self, name, 0)
        self._sources.clear()
        self._active_timers.clear()

    def set_span_sink(self, tracer) -> None:
        """Mirror every outermost :meth:`timer` interval as a
        ``phase.<name-without-_ns>`` span on ``tracer`` (ignored unless
        the tracer is enabled; ``None`` detaches).  The span rides the
        tracer's usual stack discipline, so evolution-phase spans nest
        under whatever stage span is open — the trace and the ``*_ns``
        counters describe the same intervals by construction."""
        self._span_sink = (
            tracer if tracer is not None and tracer.enabled else None
        )

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate monotonic wall-clock time under timer ``name``.

        Nestable: re-entering the same timer does not double-count (the
        outermost span owns the accumulation); distinct timers nest and
        overlap freely.
        """
        depth = self._active_timers.get(name, 0) + 1
        self._active_timers[name] = depth
        sink = self._span_sink if depth == 1 else None
        # the span opens before the timer clock and closes after it, so
        # the phase span always brackets the ``*_ns`` interval
        span = sink.start(f"phase.{name[:-3]}") if sink is not None else None
        start = time.perf_counter_ns() if depth == 1 else 0
        try:
            yield
        finally:
            self._active_timers[name] = depth - 1
            if depth == 1:
                del self._active_timers[name]
                elapsed = time.perf_counter_ns() - start
                setattr(self, name, getattr(self, name) + elapsed)
                if span is not None:
                    sink.finish(span)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (stable key order, JSON-friendly)."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def timings(self) -> Dict[str, int]:
        """The timer fields alone (nanoseconds), for phase reporting."""
        return {name: getattr(self, name) for name in TIMER_NAMES}

    def merge(
        self, snapshot: Mapping[str, int], key: Optional[str] = None
    ) -> Dict[str, int]:
        """Fold an externally produced counter snapshot into this one.

        Without ``key``, ``snapshot`` is a plain *delta* and is added
        as-is (commutative: merging deltas in any order yields the same
        totals).

        With ``key``, ``snapshot`` is the reporter's *cumulative*
        totals and the merge is duplicate-safe: only the increment over
        that key's previously merged snapshot is added, so the same
        report applied twice (a retried shard re-reporting, a worker
        reporting after every chunk) never double-counts.  Reporters'
        cumulative counters must be monotone, which per-process
        counters — timers included — are by construction.

        Returns the increments actually applied (sparse).
        """
        if key is None:
            applied = {
                name: value for name, value in snapshot.items() if value
            }
        else:
            previous = self._sources.get(key, {})
            applied = {}
            for name, value in snapshot.items():
                increment = value - previous.get(name, 0)
                if increment:
                    applied[name] = increment
            self._sources[key] = dict(snapshot)
        for name, increment in applied.items():
            setattr(self, name, getattr(self, name) + increment)
        return applied

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"PerfCounters({inner})"
