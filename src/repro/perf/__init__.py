"""Performance instrumentation and fast-path configuration.

The classification/recording hot loop (Figure 1) has a layered fast
path — see ``docs/API.md`` ("Performance architecture"):

- **Tier 1 — validity short-circuit** (:class:`FastPathConfig`
  ``.validity_short_circuit``): a linear-time automaton validation
  replaces the span DP for conforming documents.  Section 3.1 of the
  paper grounds this: for the global measure, fullness coincides with
  validity, so a valid document scores exactly 1.0.
- **Tier 2 — structural interning cache** (``.structural_cache``):
  matcher results are keyed by ``(declaration, mode, fingerprint)``
  where the fingerprint is a Merkle-style hash of the element subtree
  (:meth:`repro.xmltree.document.Element.structure_info`), so identical
  subtrees across a document *stream* cost one DP run total.
- **Tier 3 — pruned ranking** (``.pruned_ranking``): the classifier
  evaluates DTDs best-upper-bound-first and skips any DTD whose bound
  cannot beat the current best.

The evolution phase has its own layered fast path (see ``docs/API.md``,
"Incremental evolution"):

- **dirty-element tracking** (``.incremental_evolution``): an element
  whose recorded-aggregate fingerprint, declaration and parameters are
  unchanged since the previous evolution replays its previous outcome;
- **mined-rule memoization** (``.mined_rule_cache``): an LRU keyed by
  the transaction-multiset fingerprint and ``mu`` shares
  ``mine_evolution_rules`` output across elements, DTDs and evolutions;
- **pruned drain** (``.pruned_drain``): after an evolution, repository
  documents whose sound upper bound against the evolved DTD stays
  below ``sigma`` are skipped without constructing evaluations.

All tiers are semantics-preserving: similarities, classification
decisions and evolved DTDs are bit-identical with the fast paths on or
off (asserted by ``tests/test_fastpath.py`` and
``tests/test_evolution_incremental.py``).  :class:`PerfCounters` proves
at runtime that the fast paths actually fire, and its
:meth:`~PerfCounters.timer` facility (:data:`TIMER_NAMES`) reports
wall-clock phase timings for the evolution phases (mine / build /
rewrite / restrict) and the drain.
"""

from repro.perf.counters import (
    COUNTER_NAMES,
    TIMER_NAMES,
    FastPathConfig,
    PerfCounters,
)

__all__ = ["COUNTER_NAMES", "TIMER_NAMES", "FastPathConfig", "PerfCounters"]
