"""Performance instrumentation and fast-path configuration.

The classification/recording hot loop (Figure 1) has a layered fast
path — see ``docs/API.md`` ("Performance architecture"):

- **Tier 1 — validity short-circuit** (:class:`FastPathConfig`
  ``.validity_short_circuit``): a linear-time automaton validation
  replaces the span DP for conforming documents.  Section 3.1 of the
  paper grounds this: for the global measure, fullness coincides with
  validity, so a valid document scores exactly 1.0.
- **Tier 2 — structural interning cache** (``.structural_cache``):
  matcher results are keyed by ``(declaration, mode, fingerprint)``
  where the fingerprint is a Merkle-style hash of the element subtree
  (:meth:`repro.xmltree.document.Element.structure_info`), so identical
  subtrees across a document *stream* cost one DP run total.
- **Tier 3 — pruned ranking** (``.pruned_ranking``): the classifier
  evaluates DTDs best-upper-bound-first and skips any DTD whose bound
  cannot beat the current best.

All tiers are semantics-preserving: similarities and classification
decisions are bit-identical with the fast paths on or off (asserted by
``tests/test_fastpath.py``).  :class:`PerfCounters` proves at runtime
that the fast paths actually fire.
"""

from repro.perf.counters import COUNTER_NAMES, FastPathConfig, PerfCounters

__all__ = ["COUNTER_NAMES", "FastPathConfig", "PerfCounters"]
