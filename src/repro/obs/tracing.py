"""Nested spans over a monotonic clock.

A :class:`Tracer` produces :class:`Span`\\ s — named, attributed,
monotonic-clock intervals arranged in a parent/child tree by a plain
stack discipline: ``tracer.span(name)`` opens a child of whatever span
is currently open, and closing restores the parent.  The engine opens
one root span per batch (``batch``), one per document (``doc``), one
per pipeline stage (``stage.classify`` … ``stage.drain``), and the
:meth:`repro.perf.PerfCounters.timer` phases surface as ``phase.*``
spans through the same seam the nanosecond counters use — so the trace
and ``perf_snapshot()`` can never tell different stories.

The default tracer on every :class:`~repro.core.engine.XMLSource` is
:data:`NULL_TRACER`, whose ``span()`` hands back a shared, stateless
no-op — tracing costs one attribute read and one truth test per
document until somebody installs a real tracer.

Cross-process collection: parallel classification workers run a
:class:`SpanCollector` (a tracer whose finished spans export as plain
picklable tuples) and ship the records back batched per chunk on the
``ChunkResult`` — traced epochs only, untraced chunks carry no span
field at all; the parent's :meth:`Tracer.splice` grafts them
under its open epoch span — remapping span ids, rebasing the foreign
monotonic clock into the local timeline, and stamping worker/document
attributes — so a ``workers=4`` run still yields one rooted tree.
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanCollector",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]

#: a picklable finished span: (span_id, parent_id, name, start_ns,
#: end_ns, attributes)
SpanRecord = Tuple[int, Optional[int], str, int, int, Dict[str, Any]]


class Span:
    """One named interval in the trace tree.

    Usable as a context manager (``with tracer.span("x") as span:``);
    :meth:`set` attaches attributes while the span is open or after.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "end_ns",
                 "attrs", "_tracer")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        attrs: Dict[str, Any],
        tracer: "Tracer",
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.attrs = attrs
        self._tracer = tracer

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute."""
        self.attrs[key] = value

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_record(self) -> SpanRecord:
        """Flatten to the picklable wire/JSONL tuple shape."""
        return (
            self.span_id,
            self.parent_id,
            self.name,
            self.start_ns,
            self.end_ns,
            dict(self.attrs),
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self._tracer.finish(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ns}ns)"
        )


class Tracer:
    """Collects a tree of spans for one run.

    ``trace_id`` identifies the run (a fresh UUID hex by default) and
    rides every export.  Finished spans accumulate on :attr:`spans` in
    finish order; the open-span stack defines parentage, so spans from
    nested ``with`` blocks form a tree without any caller bookkeeping.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex
        #: finished spans, in finish order
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span as a context manager::

            with tracer.span("stage.classify", doc_id=7) as span:
                ...
                span.set("hit", True)
        """
        return self.start(name, **attrs)

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span explicitly (pair with :meth:`finish`)."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(name, span_id, parent_id, time.perf_counter_ns(), attrs, self)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close ``span`` (and, defensively, anything opened under it
        that was left dangling — stack discipline is LIFO)."""
        span.end_ns = time.perf_counter_ns()
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end_ns = span.end_ns
            self.spans.append(top)
        self.spans.append(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Cross-process splicing
    # ------------------------------------------------------------------

    def splice(
        self,
        records: Iterable[SpanRecord],
        parent_id: Optional[int] = None,
        rebase_to: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Graft foreign span records into this trace.

        Span ids are remapped through this tracer's allocator (internal
        parent links are preserved); records whose parent is not in the
        batch become children of ``parent_id``.  ``rebase_to`` shifts
        the whole batch so its earliest start lands on that local
        monotonic timestamp — worker clocks are not comparable to ours,
        but durations are, so the grafted spans keep their shape inside
        the local timeline.  ``attrs`` are stamped onto every grafted
        span.  Returns how many spans were grafted.
        """
        batch = list(records)
        if not batch:
            return 0
        shift = 0
        if rebase_to is not None:
            shift = rebase_to - min(record[3] for record in batch)
        remap: Dict[int, int] = {}
        for record in batch:
            remap[record[0]] = self._next_id
            self._next_id += 1
        for old_id, old_parent, name, start_ns, end_ns, span_attrs in batch:
            merged = dict(span_attrs)
            merged.update(attrs)
            span = Span(
                name,
                remap[old_id],
                remap.get(old_parent, parent_id) if old_parent is not None
                else parent_id,
                start_ns + shift,
                merged,
                self,
            )
            span.end_ns = end_ns + shift
            self.spans.append(span)
        return len(batch)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Every finished span as a plain tuple (finish order)."""
        return [span.to_record() for span in self.spans]

    def write_chrome(self, path: str) -> None:
        """Chrome trace-event JSON (``about:tracing`` / Perfetto)."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(path, self.spans, trace_id=self.trace_id)

    def write_jsonl(self, path: str) -> None:
        """The compact one-span-per-line stream."""
        from repro.obs.export import write_jsonl

        write_jsonl(path, self.spans, trace_id=self.trace_id)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(trace_id={self.trace_id!r}, "
            f"spans={len(self.spans)}, open={len(self._stack)})"
        )


class SpanCollector(Tracer):
    """A worker-side tracer: same span machinery, plus a drain method
    so each classified document ships exactly its own spans home."""

    def take_records(self) -> List[SpanRecord]:
        """Drain the finished spans as picklable records."""
        records = self.records()
        self.spans.clear()
        return records


class _NullSpan:
    """The shared no-op span: attribute writes vanish, context-manager
    entry/exit does nothing.  Stateless, hence safely reentrant."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The zero-overhead default: ``enabled`` is False (hot paths check
    it and skip all span work) and every span operation is a no-op, so
    even un-guarded call sites stay safe."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_id="")

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def start(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def finish(self, span) -> None:  # type: ignore[override]
        pass


#: the process-wide no-op tracer every source starts with
NULL_TRACER = NullTracer()
