"""Trace serialization: Chrome trace-event JSON and a JSONL stream.

Two formats, one span model:

- **Chrome trace-event JSON** (:func:`write_chrome_trace`): an object
  with a ``traceEvents`` array of complete (``"ph": "X"``) events —
  microsecond timestamps/durations, span attributes under ``args`` —
  directly loadable in ``about:tracing`` or https://ui.perfetto.dev.
  Spans carrying a ``worker`` attribute land on that worker's ``tid``
  row so a parallel run reads as one lane per process.
- **JSONL** (:func:`write_jsonl`): a compact stream — one header line
  (``{"trace_id": …, "spans": N}``) followed by one span object per
  line — cheap to append, grep, and stream-parse.

:func:`load_trace` reads either format back into ``(trace_id,
records)`` where each record is a plain dict with ``span_id``,
``parent_id``, ``name``, ``start_ns``, ``end_ns``, ``attrs`` — the
shape :mod:`repro.obs.report` consumes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "span_dict",
    "load_trace",
]


def span_dict(span: Any) -> Dict[str, Any]:
    """One span (object or record tuple) as the canonical plain dict."""
    if isinstance(span, tuple):
        span_id, parent_id, name, start_ns, end_ns, attrs = span
    else:
        span_id, parent_id = span.span_id, span.parent_id
        name, start_ns, end_ns = span.name, span.start_ns, span.end_ns
        attrs = span.attrs
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "attrs": dict(attrs),
    }


def chrome_trace(
    spans: Iterable[Any], trace_id: str = "", pid: Optional[int] = None
) -> Dict[str, Any]:
    """Chrome trace-event JSON as a plain dict.

    Each span becomes a complete (``"X"``) event; timestamps are
    rebased so the trace starts at zero microseconds.  Spans with a
    ``worker`` attribute get that value as their ``tid`` (one timeline
    row per worker process); everything else rides tid 0.
    """
    records = [span_dict(span) for span in spans]
    pid = pid if pid is not None else os.getpid()
    base_ns = min((r["start_ns"] for r in records), default=0)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro trace {trace_id}".strip()},
        }
    ]
    for record in records:
        attrs = record["attrs"]
        tid = attrs.get("worker", 0)
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (record["start_ns"] - base_ns) / 1000.0,
                "dur": (record["end_ns"] - record["start_ns"]) / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": {
                    "span_id": record["span_id"],
                    "parent_id": record["parent_id"],
                    "start_ns": record["start_ns"],
                    "end_ns": record["end_ns"],
                    **attrs,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "spans": len(records)},
    }


def write_chrome_trace(path: str, spans: Iterable[Any], trace_id: str = "") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, trace_id), handle, indent=1, default=str)
        handle.write("\n")


def write_jsonl(path: str, spans: Iterable[Any], trace_id: str = "") -> None:
    records = [span_dict(span) for span in spans]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"trace_id": trace_id, "spans": len(records)}) + "\n"
        )
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")


def _records_from_chrome(data: Dict[str, Any]) -> Tuple[str, List[Dict[str, Any]]]:
    trace_id = str(data.get("otherData", {}).get("trace_id", ""))
    records = []
    for event in data.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start_ns = args.pop("start_ns", None)
        end_ns = args.pop("end_ns", None)
        if start_ns is None:
            start_ns = int(event.get("ts", 0) * 1000)
            end_ns = start_ns + int(event.get("dur", 0) * 1000)
        records.append(
            {
                "span_id": span_id,
                "parent_id": parent_id,
                "name": event.get("name", ""),
                "start_ns": start_ns,
                "end_ns": end_ns,
                "attrs": args,
            }
        )
    return trace_id, records


def load_trace(path: str) -> Tuple[str, List[Dict[str, Any]]]:
    """Read a Chrome trace JSON or a span JSONL back into records.

    Either format loads to the same ``(trace_id, records)`` shape, so
    ``dtdevolve report`` accepts ``--trace`` and ``--trace-jsonl``
    output (and the serve sink's rotated generations) alike.  Raises
    ``ValueError`` with the offending path (and line, for JSONL) for
    content that is neither — including *mixed* files where
    Chrome-trace events appear inside a JSONL stream.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.strip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    try:
        data = json.loads(stripped)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "traceEvents" in data:
        if not isinstance(data["traceEvents"], list):
            raise ValueError(
                f"{path}: Chrome trace with a non-array traceEvents field"
            )
        return _records_from_chrome(data)
    if data is not None and not isinstance(data, dict):
        raise ValueError(
            f"{path}: not a trace (top-level JSON is "
            f"{type(data).__name__}, expected a Chrome trace object or "
            f"JSONL span lines)"
        )
    # JSONL: header line then one span per line
    trace_id = ""
    saw_header = False
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(stripped.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{index + 1}: bad JSONL line: {error}")
        if not isinstance(entry, dict):
            raise ValueError(
                f"{path}:{index + 1}: bad JSONL entry "
                f"({type(entry).__name__}, expected an object)"
            )
        if "traceEvents" in entry or entry.get("ph") is not None:
            raise ValueError(
                f"{path}:{index + 1}: mixed formats — Chrome trace-event "
                f"content inside a JSONL stream; re-export with one of "
                f"--trace or --trace-jsonl"
            )
        if "name" in entry and "start_ns" in entry:
            records.append(
                {
                    "span_id": entry.get("span_id"),
                    "parent_id": entry.get("parent_id"),
                    "name": entry["name"],
                    "start_ns": entry["start_ns"],
                    "end_ns": entry.get("end_ns", entry["start_ns"]),
                    "attrs": dict(entry.get("attrs", {})),
                }
            )
        elif "trace_id" in entry:
            if saw_header and str(entry["trace_id"]) != trace_id:
                raise ValueError(
                    f"{path}:{index + 1}: second JSONL header with a "
                    f"different trace_id ({entry['trace_id']!r} after "
                    f"{trace_id!r}) — concatenated traces are not one "
                    f"trace"
                )
            trace_id = str(entry["trace_id"])
            saw_header = True
        else:
            keys = ", ".join(sorted(map(str, entry))) or "no keys"
            raise ValueError(
                f"{path}:{index + 1}: neither span nor header "
                f"(object with {keys})"
            )
    return trace_id, records
