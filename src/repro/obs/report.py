"""Latency reporting over a trace dump (`dtdevolve report`).

Consumes the records :func:`repro.obs.export.load_trace` yields and
renders the run as fixed-width tables (the same
:class:`~repro.metrics.report.Table` the benchmarks print):

- **per-stage latency** — count, total, p50/p90/p99/max per span name
  for the pipeline stages (``stage.*``), the per-document roots
  (``doc``), batches and epochs;
- **slowest documents** — the ``doc`` spans ranked by duration, with
  their ``doc_id``/root-tag/DTD provenance attributes;
- **evolution phase breakdown** — the ``phase.*`` spans (the same
  intervals the ``*_ns`` perf timers accumulate), with each phase's
  share of the total evolution wall-clock;
- **worker summary** — spliced ``worker.*`` spans grouped by worker id,
  when the trace came from a parallel run.

Percentiles here are exact (computed from the full duration lists, not
histogram buckets — a trace dump carries every span).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List

from repro.metrics.report import Table

__all__ = ["render_report", "stage_latencies"]


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


def _percentile(durations: List[int], quantile: float) -> int:
    """Exact nearest-rank percentile (1-based ``ceil(q * n)``) over a
    sorted duration list."""
    if not durations:
        return 0
    index = min(len(durations), max(1, math.ceil(quantile * len(durations))))
    return durations[index - 1]


def stage_latencies(records: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per-span-name duration digests (count, total/p50/p90/p99/max in
    nanoseconds), for programmatic consumers."""
    by_name: Dict[str, List[int]] = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(
            record["end_ns"] - record["start_ns"]
        )
    digests: Dict[str, Dict[str, float]] = {}
    for name, durations in sorted(by_name.items()):
        durations.sort()
        digests[name] = {
            "count": len(durations),
            "total_ns": sum(durations),
            "p50_ns": _percentile(durations, 0.50),
            "p90_ns": _percentile(durations, 0.90),
            "p99_ns": _percentile(durations, 0.99),
            "max_ns": durations[-1],
        }
    return digests


def _latency_table(records: List[Dict[str, Any]]) -> Table:
    table = Table(
        "Per-stage latency (ms)",
        ["span", "count", "total", "p50", "p90", "p99", "max"],
    )
    digests = stage_latencies(
        r
        for r in records
        if r["name"] in ("batch", "epoch", "doc")
        or r["name"].startswith("stage.")
    )
    for name, digest in digests.items():
        table.add_row(
            [
                name,
                int(digest["count"]),
                _ms(digest["total_ns"]),
                _ms(digest["p50_ns"]),
                _ms(digest["p90_ns"]),
                _ms(digest["p99_ns"]),
                _ms(digest["max_ns"]),
            ]
        )
    return table


def _slowest_documents(records: List[Dict[str, Any]], top: int) -> Table:
    table = Table(
        f"Slowest documents (top {top})",
        ["doc_id", "root", "dtd", "ms", "evolved"],
    )
    docs = [r for r in records if r["name"] == "doc"]
    docs.sort(key=lambda r: r["end_ns"] - r["start_ns"], reverse=True)
    for record in docs[:top]:
        attrs = record["attrs"]
        table.add_row(
            [
                attrs.get("doc_id", "?"),
                attrs.get("root", "?"),
                attrs.get("dtd") or "<repository>",
                _ms(record["end_ns"] - record["start_ns"]),
                ",".join(attrs.get("evolved", ())) or "-",
            ]
        )
    return table


def _phase_breakdown(records: List[Dict[str, Any]]) -> Table:
    table = Table(
        "Evolution phase breakdown (ms)",
        ["phase", "count", "total", "p50", "p99", "share"],
    )
    digests = stage_latencies(
        r for r in records if r["name"].startswith("phase.")
    )
    evolve_total = digests.get("phase.evolve", {}).get("total_ns", 0)
    drain_total = digests.get("phase.drain", {}).get("total_ns", 0)
    whole = evolve_total + drain_total
    for name, digest in digests.items():
        share = digest["total_ns"] / whole if whole else 0.0
        table.add_row(
            [
                name,
                int(digest["count"]),
                _ms(digest["total_ns"]),
                _ms(digest["p50_ns"]),
                _ms(digest["p99_ns"]),
                f"{share:6.1%}",
            ]
        )
    return table


def _worker_summary(records: List[Dict[str, Any]]) -> Table:
    """Spliced ``worker.*`` spans grouped by worker process.

    ``kB shipped`` sums the per-document ``wire_bytes`` shares the
    driver stamps at splice time (each document's slice of its chunk's
    measured result bytes); ``pool gen`` lists which pool generation(s)
    the worker's spans rode — a generation above 1 means the persistent
    pool was rebuilt after a broken executor.  Traces from before these
    attrs existed render ``-``.
    """
    table = Table(
        "Worker classification spans",
        ["worker", "spans", "total", "p99", "kB shipped", "pool gen"],
    )
    by_worker: Dict[Any, List[int]] = {}
    shipped: Dict[Any, int] = {}
    generations: Dict[Any, set] = {}
    for record in records:
        if not record["name"].startswith("worker."):
            continue
        attrs = record["attrs"]
        worker = attrs.get("worker", "?")
        by_worker.setdefault(worker, []).append(
            record["end_ns"] - record["start_ns"]
        )
        wire = attrs.get("wire_bytes")
        if wire is not None and record["name"] == "worker.classify":
            shipped[worker] = shipped.get(worker, 0) + wire
        generation = attrs.get("pool_gen")
        if generation is not None:
            generations.setdefault(worker, set()).add(generation)
    for worker, durations in sorted(by_worker.items(), key=lambda kv: str(kv[0])):
        durations.sort()
        gens = generations.get(worker)
        table.add_row(
            [
                worker,
                len(durations),
                _ms(sum(durations)),
                _ms(_percentile(durations, 0.99)),
                f"{shipped[worker] / 1024:.1f}" if worker in shipped else "-",
                ",".join(str(g) for g in sorted(gens)) if gens else "-",
            ]
        )
    return table


def render_report(
    records: Iterable[Dict[str, Any]], trace_id: str = "", top: int = 5
) -> str:
    """The full report as printable text."""
    records = list(records)
    header = f"trace {trace_id or '<unknown>'} — {len(records)} spans"
    sections = [header, "", _latency_table(records).render()]
    slowest = _slowest_documents(records, top)
    if slowest.rows:
        sections += ["", slowest.render()]
    phases = _phase_breakdown(records)
    if phases.rows:
        sections += ["", phases.render()]
    workers = _worker_summary(records)
    if workers.rows:
        sections += ["", workers.render()]
    return "\n".join(sections)
