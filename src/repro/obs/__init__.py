"""Observability: tracing, metrics, and run reports (``repro.obs``).

The layer every serving stack carries, for the Figure-1 engine:

- :mod:`repro.obs.tracing` — a :class:`Tracer` of nested monotonic
  :class:`Span`\\ s with a per-run ``trace_id``; the engine emits spans
  for batches, documents, pipeline stages, evolution phases, parallel
  epochs and worker classifications.  The default
  :data:`NULL_TRACER` is a shared no-op: tracing costs one flag check
  until enabled.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with p50/p90/p99 summaries and
  Prometheus text exposition; it mirrors (never replaces)
  :class:`~repro.perf.PerfCounters`.
- :mod:`repro.obs.export` — Chrome trace-event JSON
  (``about:tracing`` / Perfetto) and a compact JSONL stream, with a
  loader for both.
- :mod:`repro.obs.report` — the latency tables behind
  ``dtdevolve report``.
- :mod:`repro.obs.logging` — structured JSON logging with per-request
  correlation ids (the ``--log-json`` formatter).
- :mod:`repro.obs.live` — continuous-service telemetry: the sampled
  always-on :class:`Sampler`, the :class:`SpanRing` behind
  ``/debug/slow``, the :class:`RotatingJsonlSink`, and the
  :class:`DriftMonitor` exporting evolution-drift health gauges.

See ``docs/API.md`` ("Observability" and "Operating the service") for
the span naming scheme, log schema, and drift metrics; DESIGN.md
decisions 10 and 15 for the off-the-merge-path rationale.
"""

from repro.obs.export import (
    chrome_trace,
    load_trace,
    span_dict,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.live import (
    DriftMonitor,
    RequestSample,
    RotatingJsonlSink,
    Sampler,
    SpanRing,
    attach_degradation_monitor,
    build_request_spans,
)
from repro.obs.logging import (
    CorrelationFilter,
    JsonFormatter,
    configure_json_logging,
    current_request_id,
    request_context,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import render_report, stage_latencies
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanCollector,
    Tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "SpanCollector",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "span_dict",
    "load_trace",
    "render_report",
    "stage_latencies",
    "Sampler",
    "RequestSample",
    "SpanRing",
    "RotatingJsonlSink",
    "DriftMonitor",
    "attach_degradation_monitor",
    "build_request_spans",
    "JsonFormatter",
    "CorrelationFilter",
    "configure_json_logging",
    "current_request_id",
    "request_context",
]
