"""Observability: tracing, metrics, and run reports (``repro.obs``).

The layer every serving stack carries, for the Figure-1 engine:

- :mod:`repro.obs.tracing` — a :class:`Tracer` of nested monotonic
  :class:`Span`\\ s with a per-run ``trace_id``; the engine emits spans
  for batches, documents, pipeline stages, evolution phases, parallel
  epochs and worker classifications.  The default
  :data:`NULL_TRACER` is a shared no-op: tracing costs one flag check
  until enabled.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with p50/p90/p99 summaries and
  Prometheus text exposition; it mirrors (never replaces)
  :class:`~repro.perf.PerfCounters`.
- :mod:`repro.obs.export` — Chrome trace-event JSON
  (``about:tracing`` / Perfetto) and a compact JSONL stream, with a
  loader for both.
- :mod:`repro.obs.report` — the latency tables behind
  ``dtdevolve report``.

See ``docs/API.md`` ("Observability") for the span naming scheme and
DESIGN.md decision 10 for the no-op-default rationale.
"""

from repro.obs.export import (
    chrome_trace,
    load_trace,
    span_dict,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import render_report, stage_latencies
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanCollector,
    Tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "SpanCollector",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "span_dict",
    "load_trace",
    "render_report",
    "stage_latencies",
]
