"""Structured JSON logging with per-request correlation ids.

One stdlib-``logging`` formatter, one context variable.  Every log line
becomes a single JSON object (``ts``/``level``/``logger``/``message``
plus any ``extra=`` fields the call site attached), and every line
emitted while a request is in scope carries that request's
``request_id`` — the same id the serve layer returns in the
``X-Request-Id`` response header and stamps on sampled span trees — so
a slow deposit can be joined across log lines, spans, and metrics with
one grep.

The correlation id rides a :class:`contextvars.ContextVar`.  The serve
dispatcher sets it on the event-loop task for the duration of a request;
the single-writer thread re-enters it (:func:`request_context`) around
each queued op it applies, so log lines *and* bus-event handlers running
on the writer thread see the id of the request that enqueued the op —
the id crosses the writer-queue boundary with the op, not with the
thread.

Nothing here configures global logging behind your back:
:func:`configure_json_logging` is an explicit opt-in (the ``--log-json``
CLI flag calls it), and :class:`CorrelationFilter` only *adds* a field.
"""

from __future__ import annotations

import contextlib
import json
import logging
import sys
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional, TextIO

__all__ = [
    "JsonFormatter",
    "CorrelationFilter",
    "configure_json_logging",
    "current_request_id",
    "request_context",
]

#: the in-scope request id (``None`` outside any request)
_request_id_var: ContextVar[Optional[str]] = ContextVar(
    "repro_request_id", default=None
)


def current_request_id() -> Optional[str]:
    """The correlation id of the request in scope, if any."""
    return _request_id_var.get()


@contextlib.contextmanager
def request_context(request_id: Optional[str]) -> Iterator[None]:
    """Enter ``request_id``'s correlation scope for the ``with`` body.

    Used by the serve dispatcher around each handler and by the writer
    thread around each queued op it applies; nesting restores the outer
    id on exit.  A ``None`` id clears the scope.
    """
    token = _request_id_var.set(request_id)
    try:
        yield
    finally:
        _request_id_var.reset(token)


#: every attribute a bare LogRecord carries — anything else on the
#: record arrived via ``extra=`` and belongs in the JSON line
_RESERVED = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, __file__, 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


class CorrelationFilter(logging.Filter):
    """Stamp the in-scope ``request_id`` onto records that lack one.

    A ``filter`` rather than formatter logic so the id is also visible
    to any *other* handler attached to the same logger.  Never rejects
    a record.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "request_id", None) is None:
            record.request_id = current_request_id()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ``ts`` (epoch seconds), ``level``,
    ``logger``, ``message``, ``request_id`` when in scope, then every
    ``extra=`` field the call site attached (sorted by key; values that
    are not JSON-serializable render via ``str``).  Exceptions land in
    an ``exc`` field as the usual traceback text."""

    def format(self, record: logging.LogRecord) -> str:
        line: Dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None)
        if request_id is None:
            request_id = current_request_id()
        if request_id is not None:
            line["request_id"] = request_id
        for key in sorted(vars(record)):
            if key in _RESERVED or key.startswith("_") or key == "request_id":
                continue
            line[key] = getattr(record, key)
        if record.exc_info:
            line["exc"] = self.formatException(record.exc_info)
        return json.dumps(line, default=str, separators=(",", ":"))

    def formatTime(self, record, datefmt=None):  # pragma: no cover - unused
        return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))


def configure_json_logging(
    stream: Optional[TextIO] = None,
    logger: str = "repro",
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSON-formatting handler (with correlation-id stamping)
    to ``logger`` and return it — detach with
    ``logging.getLogger(logger).removeHandler(handler)``.

    The default target is the root ``repro`` logger, so every subsystem
    (``repro.serve``, ``repro.parallel``, ``repro.obs``) emits through
    one formatter; ``stream`` defaults to stderr.
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler.addFilter(CorrelationFilter())
    target = logging.getLogger(logger)
    target.addHandler(handler)
    if target.level == logging.NOTSET or target.level > level:
        target.setLevel(level)
    return handler
