"""Continuous service telemetry: sampled tracing and drift health.

PR 5's :mod:`repro.obs` was built for finite batch runs — tracing is
all-or-nothing and metrics are a post-hoc export.  This module is the
*always-on* complement a long-running ``dtdevolve serve`` daemon needs:

- :class:`Sampler` — head-based rate sampling (deterministic given a
  seed, so tests can pin the kept set) plus tail-based keeps for slow
  and errored requests.  Head sampling decides *before* the work (cheap
  requests stay cheap); tail keeps decide *after* (a slow outlier is
  always captured, even at a 0.0 head rate — which is why sampling is
  on by default: the steady-state cost is a couple of timestamps per
  request).
- :class:`SpanRing` — a bounded ring of recently kept
  :class:`RequestSample`\\ s backing ``GET /debug/slow``.
- :class:`RotatingJsonlSink` — kept span trees streamed to a rotating
  JSONL file in the exact ``--trace-jsonl`` span schema, so
  ``dtdevolve report <sink>`` renders production samples directly.
- :class:`DriftMonitor` — evolution-drift health gauges and counters
  fed from the existing :class:`~repro.pipeline.events.EventBus`
  events: per-DTD classification/acceptance rates, repository misfit
  count and sigma-window position, documents-since-evolution, per-shard
  document counts — plus the ``repro_degraded_ops_total`` counter and
  WARN-level structured log lines for
  :class:`~repro.parallel.events.ShardRetried` /
  :class:`~repro.parallel.events.ParallelFallback`, so a silent
  fallback-to-serial is visible in production.

Nothing here sits on an engine decision path: samplers observe request
envelopes, the drift monitor observes bus events, and span collection
during a sampled write is the same observation-only tracing the batch
path uses (DESIGN.md decision 15).
"""

from __future__ import annotations

import logging
import os
import threading
from collections import deque
from hashlib import blake2b
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.logging import current_request_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecord

__all__ = [
    "Sampler",
    "RequestSample",
    "SpanRing",
    "RotatingJsonlSink",
    "DriftMonitor",
    "attach_degradation_monitor",
    "build_request_spans",
]


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------


class Sampler:
    """Head-rate plus tail-keep request sampling.

    ``sample(request_id)`` is the head decision: a keyed hash of
    ``(seed, request_id)`` mapped to ``[0, 1)`` and compared to
    ``rate`` — deterministic, so the same seed and the same request ids
    always select the same subset (no RNG state, safe from any thread).
    ``keep_reason`` is the tail decision, taken when the request
    finishes: head-sampled requests are kept as ``"head"``; requests
    that erred (status >= 500) or ran longer than ``slow_ns`` are kept
    as ``"error"`` / ``"slow"`` even when the head coin said no.
    """

    def __init__(
        self,
        rate: float = 0.0,
        slow_ns: int = 250_000_000,
        seed: int = 0,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.slow_ns = int(slow_ns)
        self.seed = seed
        #: head-decision threshold in hash space (2**64 buckets)
        self._threshold = int(rate * 2.0**64)
        # decision tallies, surfaced on /debug/vars
        self.offered = 0
        self.kept_head = 0
        self.kept_slow = 0
        self.kept_error = 0
        self.dropped = 0

    def sample(self, request_id: str) -> bool:
        """The head decision for ``request_id`` (deterministic)."""
        if self._threshold == 0:
            return False
        digest = blake2b(
            f"{self.seed}:{request_id}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") < self._threshold

    def keep_reason(
        self, head_sampled: bool, status: int, duration_ns: int
    ) -> Optional[str]:
        """Why a finished request is kept (``None`` = dropped).

        Error beats slow beats head in the recorded reason, so the ring
        and sink label the *interesting* property of a tail-kept
        request; the tallies follow the same precedence.
        """
        self.offered += 1
        if status >= 500:
            self.kept_error += 1
            return "error"
        if self.slow_ns >= 0 and duration_ns >= self.slow_ns:
            self.kept_slow += 1
            return "slow"
        if head_sampled:
            self.kept_head += 1
            return "head"
        self.dropped += 1
        return None

    def stats(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "slow_threshold_ms": self.slow_ns / 1e6,
            "seed": self.seed,
            "offered": self.offered,
            "kept_head": self.kept_head,
            "kept_slow": self.kept_slow,
            "kept_error": self.kept_error,
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:
        return (
            f"Sampler(rate={self.rate}, slow_ms={self.slow_ns / 1e6:.0f}, "
            f"kept={self.kept_head + self.kept_slow + self.kept_error}/"
            f"{self.offered})"
        )


class RequestSample(NamedTuple):
    """One kept request: the envelope plus its span tree."""

    request_id: str
    method: str
    endpoint: str
    status: int
    start_ns: int
    end_ns: int
    #: ``"head"`` / ``"slow"`` / ``"error"``
    reason: str
    #: the request span tree — root first, ids unique, every parent
    #: resolving (see :func:`build_request_spans`)
    spans: Tuple[SpanRecord, ...]

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def as_dict(self) -> Dict[str, Any]:
        from repro.obs.export import span_dict

        return {
            "request_id": self.request_id,
            "method": self.method,
            "endpoint": self.endpoint,
            "status": self.status,
            "duration_ms": self.duration_ns / 1e6,
            "reason": self.reason,
            "spans": [span_dict(record) for record in self.spans],
        }


def build_request_spans(
    request_id: str,
    method: str,
    endpoint: str,
    status: int,
    start_ns: int,
    end_ns: int,
    phases: Sequence[Tuple[str, int, int, Dict[str, Any]]] = (),
    engine_records: Iterable[SpanRecord] = (),
) -> Tuple[SpanRecord, ...]:
    """Assemble one rooted span tree for a kept request.

    The root is the synthetic ``request.<endpoint>`` span; ``phases``
    (``(name, start_ns, end_ns, attrs)``, e.g. ``queue.wait`` /
    ``write.apply``) become its direct children; ``engine_records``
    (raw :data:`SpanRecord` tuples drained from a
    :class:`~repro.obs.tracing.SpanCollector` during the applied op)
    are grafted under the last phase with ids remapped into the local
    allocation so the whole tree stays unique and resolvable.  Every
    span is stamped with ``request_id`` — the join key to log lines and
    metrics.
    """
    root_attrs = {
        "request_id": request_id,
        "method": method,
        "status": status,
    }
    spans: List[SpanRecord] = [
        (1, None, f"request.{endpoint}", start_ns, end_ns, root_attrs)
    ]
    next_id = 2
    graft_parent = 1
    for name, phase_start, phase_end, attrs in phases:
        merged = dict(attrs)
        merged["request_id"] = request_id
        spans.append((next_id, 1, name, phase_start, phase_end, merged))
        graft_parent = next_id
        next_id += 1
    engine_batch = list(engine_records)
    if engine_batch:
        remap: Dict[int, int] = {}
        for record in engine_batch:
            remap[record[0]] = next_id
            next_id += 1
        for old_id, old_parent, name, span_start, span_end, attrs in engine_batch:
            merged = dict(attrs)
            merged["request_id"] = request_id
            spans.append(
                (
                    remap[old_id],
                    remap.get(old_parent, graft_parent)
                    if old_parent is not None
                    else graft_parent,
                    name,
                    span_start,
                    span_end,
                    merged,
                )
            )
    return tuple(spans)


class SpanRing:
    """A bounded, thread-safe ring of kept :class:`RequestSample`\\ s.

    Backs ``GET /debug/slow``: :meth:`slowest` returns the N slowest
    samples currently in the window, slowest first (ties keep arrival
    order).  Appends evict the oldest sample once ``capacity`` is
    reached, so memory is bounded no matter how long the daemon runs.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._entries: "deque[RequestSample]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.appended = 0

    def append(self, sample: RequestSample) -> None:
        with self._lock:
            self._entries.append(sample)
            self.appended += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> List[RequestSample]:
        """The current window, oldest first."""
        with self._lock:
            return list(self._entries)

    def slowest(self, count: int = 10) -> List[RequestSample]:
        """The ``count`` slowest samples in the window, slowest first."""
        window = self.snapshot()
        window.sort(key=lambda sample: -sample.duration_ns)
        return window[:count]

    def __repr__(self) -> str:
        return f"SpanRing({len(self)}/{self.capacity}, appended={self.appended})"


class RotatingJsonlSink:
    """Kept span trees appended to a size-rotated JSONL file.

    Lines are the exact ``--trace-jsonl`` span schema (one header line
    per file, then one span object per line), so the sink file — and
    every rotated generation — loads with
    :func:`repro.obs.export.load_trace` and renders with ``dtdevolve
    report``.  When the live file exceeds ``max_bytes`` it rotates
    (``spans.jsonl`` → ``spans.jsonl.1`` → … up to ``backups``, oldest
    deleted), so disk stays bounded on a long-running daemon.
    """

    def __init__(
        self,
        path: str,
        trace_id: str = "",
        max_bytes: int = 8 * 1024 * 1024,
        backups: int = 3,
    ):
        self.path = path
        self.trace_id = trace_id
        self.max_bytes = max_bytes
        self.backups = max(0, backups)
        self.rotations = 0
        self.spans_written = 0
        self._lock = threading.Lock()
        self._handle = None

    def _open(self):
        import json

        if self._handle is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._handle.write(
                    json.dumps({"trace_id": self.trace_id, "spans": 0}) + "\n"
                )
        return self._handle

    def write(self, sample: RequestSample) -> None:
        """Append one kept request's spans (root first)."""
        import json

        from repro.obs.export import span_dict

        with self._lock:
            handle = self._open()
            for record in sample.spans:
                handle.write(json.dumps(span_dict(record), default=str) + "\n")
                self.spans_written += 1
            handle.flush()
            if handle.tell() >= self.max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "max_bytes": self.max_bytes,
            "backups": self.backups,
            "rotations": self.rotations,
            "spans_written": self.spans_written,
        }

    def __repr__(self) -> str:
        return (
            f"RotatingJsonlSink({self.path!r}, "
            f"spans={self.spans_written}, rotations={self.rotations})"
        )


# ----------------------------------------------------------------------
# Degradation visibility
# ----------------------------------------------------------------------

_degradation_logger = logging.getLogger("repro.parallel")


def attach_degradation_monitor(
    bus: "EventBus",
    registry: Optional[MetricsRegistry] = None,
    logger: Optional[logging.Logger] = None,
) -> Callable[[], None]:
    """Surface :class:`ShardRetried` / :class:`ParallelFallback` as
    WARN-level structured log lines and ``repro_degraded_ops_total``
    counter increments.

    Both events already ride the engine bus; without an observer a
    production run silently degrades to serial.  Returns a detach
    callable.  ``registry`` may be ``None`` (log lines only); with a
    registry, both counter label values are pre-created at zero so a
    scrape shows the family even before anything degrades.
    """
    from repro.parallel.events import ParallelFallback, ShardRetried

    log = logger if logger is not None else _degradation_logger
    counters = {}
    if registry is not None:
        for event_name in ("shard_retried", "parallel_fallback"):
            counters[event_name] = registry.counter(
                "repro_degraded_ops_total",
                "parallel ops that degraded (shard retries, serial fallbacks)",
                event=event_name,
            )

    def on_retry(event: ShardRetried) -> None:
        if "shard_retried" in counters:
            counters["shard_retried"].inc()
        log.warning(
            "shard %d retried (epoch %d, %d documents): %s",
            event.shard_index,
            event.epoch,
            event.documents,
            event.error,
            extra={
                "event": "shard_retried",
                "epoch": event.epoch,
                "shard": event.shard_index,
                "documents": event.documents,
            },
        )

    def on_fallback(event: ParallelFallback) -> None:
        if "parallel_fallback" in counters:
            counters["parallel_fallback"].inc()
        log.warning(
            "parallel classification fell back to serial for %s "
            "(epoch %d, %d documents): %s",
            "the whole batch" if event.shard_index < 0
            else f"shard {event.shard_index}",
            event.epoch,
            event.documents,
            event.reason,
            extra={
                "event": "parallel_fallback",
                "epoch": event.epoch,
                "shard": event.shard_index,
                "documents": event.documents,
            },
        )

    bus.subscribe(ShardRetried, on_retry)
    bus.subscribe(ParallelFallback, on_fallback)

    def detach() -> None:
        bus.unsubscribe(ShardRetried, on_retry)
        bus.unsubscribe(ParallelFallback, on_fallback)

    return detach


# ----------------------------------------------------------------------
# Evolution-drift health
# ----------------------------------------------------------------------


class DriftMonitor:
    """Evolution-drift health telemetry over one engine's event bus.

    Counters accumulate from events (per-DTD classified / accepted /
    recorded totals, deposits, recoveries, evolutions); gauges are
    re-pulled from engine state on :meth:`refresh` (activation scores,
    recording-period sizes, repository misfit count, per-shard document
    counts), which the serve layer calls on every ``/metrics`` scrape
    and ``/debug/health`` hit.  :meth:`summary` condenses the same
    signals into the JSON the health endpoint returns.

    Event handlers run inline on whatever thread emits (the serve
    writer thread); they only touch pre-created instruments and plain
    attributes, so no handler ever mutates the registry's get-or-create
    map off the owning thread.
    """

    def __init__(self, registry: MetricsRegistry, source: "XMLSource"):
        self.registry = registry
        self.source = source
        self._detach_degradation: Optional[Callable[[], None]] = None
        self._handlers: List[Tuple[type, Callable]] = []
        #: documents processed at the moment of the last adopted
        #: evolution (drives documents-since-evolution)
        self._processed_at_last_evolution = source.documents_processed
        self._last_evolved_dtd: Optional[str] = None
        self._misfit_gauge = registry.gauge(
            "repro_repository_misfits",
            "documents currently held in the repository (below sigma "
            "against every DTD)",
        )
        self._sigma_margin_gauge = registry.gauge(
            "repro_repository_sigma_margin",
            "sigma minus the best similarity of the most recent misfit "
            "(how far below the acceptance window it sat)",
        )
        self._since_evolution_gauge = registry.gauge(
            "repro_docs_since_evolution",
            "documents processed since the last adopted evolution",
        )
        self._deposit_similarity = registry.histogram(
            "repro_deposit_similarity",
            "best similarity of deposited (rejected) documents",
            buckets=tuple(round(0.05 * i, 2) for i in range(21)),
        )
        self._recovered_counter = registry.counter(
            "repro_repository_recovered_total",
            "repository documents recovered by drains",
        )
        # per-DTD instruments for the initial set; evolutions keep the
        # names, mine_repository additions are picked up on refresh
        for name in source.dtd_names():
            self._dtd_instruments(name)

    # ------------------------------------------------------------------
    # Instrument plumbing
    # ------------------------------------------------------------------

    def _dtd_instruments(self, name: str) -> Dict[str, Any]:
        registry = self.registry
        return {
            "classified": registry.counter(
                "repro_dtd_classified_total",
                "documents whose best-ranked DTD was this one",
                dtd=name,
            ),
            "accepted": registry.counter(
                "repro_dtd_accepted_total",
                "documents accepted (similarity >= sigma) by this DTD",
                dtd=name,
            ),
            "recorded": registry.counter(
                "repro_dtd_recorded_total",
                "documents folded into this DTD's recording aggregates",
                dtd=name,
            ),
            "evolutions": registry.counter(
                "repro_dtd_evolutions_total",
                "evolutions adopted for this DTD",
                dtd=name,
            ),
            "activation": registry.gauge(
                "repro_dtd_activation_score",
                "current activation score (average invalid fraction) of "
                "the recording period",
                dtd=name,
            ),
            "recording": registry.gauge(
                "repro_dtd_documents_recorded",
                "documents in the current recording period",
                dtd=name,
            ),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "DriftMonitor":
        """Subscribe to the engine bus (idempotent)."""
        if self._handlers:
            return self
        from repro.pipeline.events import (
            DocumentClassified,
            DocumentDeposited,
            DocumentRecorded,
            EvolutionFinished,
            RepositoryDrained,
        )

        pairs = (
            (DocumentClassified, self._on_classified),
            (DocumentDeposited, self._on_deposited),
            (DocumentRecorded, self._on_recorded),
            (EvolutionFinished, self._on_evolution),
            (RepositoryDrained, self._on_drained),
        )
        for event_type, handler in pairs:
            self.source.events.subscribe(event_type, handler)
            self._handlers.append((event_type, handler))
        self._detach_degradation = attach_degradation_monitor(
            self.source.events, self.registry
        )
        self.refresh()
        return self

    def detach(self) -> None:
        for event_type, handler in self._handlers:
            self.source.events.unsubscribe(event_type, handler)
        self._handlers.clear()
        if self._detach_degradation is not None:
            self._detach_degradation()
            self._detach_degradation = None

    # ------------------------------------------------------------------
    # Event handlers (writer-thread inline)
    # ------------------------------------------------------------------

    def _on_classified(self, event) -> None:
        name = event.dtd_name
        if name is not None:
            instruments = self._dtd_instruments(name)
            instruments["classified"].inc()
            if event.accepted:
                instruments["accepted"].inc()

    def _on_deposited(self, event) -> None:
        self._misfit_gauge.set(event.repository_size)
        self._sigma_margin_gauge.set(
            self.source.classifier.threshold - event.similarity
        )
        self._deposit_similarity.observe(event.similarity)

    def _on_recorded(self, event) -> None:
        instruments = self._dtd_instruments(event.dtd_name)
        instruments["recorded"].inc()
        instruments["recording"].set(event.documents_recorded)

    def _on_evolution(self, event) -> None:
        self._dtd_instruments(event.dtd_name)["evolutions"].inc()
        self._processed_at_last_evolution = self.source.documents_processed
        self._last_evolved_dtd = event.dtd_name
        self._since_evolution_gauge.set(0)

    def _on_drained(self, event) -> None:
        self._misfit_gauge.set(event.remaining)
        if event.recovered:
            self._recovered_counter.inc(event.recovered)

    # ------------------------------------------------------------------
    # Pull-based gauges
    # ------------------------------------------------------------------

    def docs_since_evolution(self) -> int:
        return self.source.documents_processed - self._processed_at_last_evolution

    def refresh(self) -> None:
        """Re-pull every engine-state gauge (scrape-time)."""
        source = self.source
        self._misfit_gauge.set(len(source.repository))
        self._since_evolution_gauge.set(self.docs_since_evolution())
        for name in source.dtd_names():
            extended = source.extended.get(name)
            if extended is None:
                continue
            instruments = self._dtd_instruments(name)
            instruments["activation"].set(extended.activation_score)
            instruments["recording"].set(extended.document_count)
        shard_map = self._shard_map()
        if shard_map is not None:
            for index, shard in enumerate(shard_map):
                self.registry.gauge(
                    "repro_shard_documents",
                    "documents classified into each DTD shard "
                    "(sum of member-DTD classified totals)",
                    shard=str(index),
                ).set(
                    sum(
                        self._dtd_instruments(name)["classified"].value
                        for name in shard
                    )
                )

    def _shard_map(self):
        shard_map = getattr(self.source.classifier, "shard_map", None)
        return shard_map() if callable(shard_map) else None

    # ------------------------------------------------------------------
    # The health digest
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The ``/debug/health`` drift digest.

        Per-DTD ``status``: ``"evolution-pending"`` once the paper's
        check-phase condition holds (enough documents recorded and
        activation above tau), ``"drifting"`` when the activation score
        crossed half of tau (invalidity accumulating, evolution not yet
        due), ``"ok"`` otherwise.
        """
        self.refresh()
        source = self.source
        config = source.config
        dtds: Dict[str, Any] = {}
        for name in source.dtd_names():
            extended = source.extended.get(name)
            if extended is None:
                continue
            instruments = self._dtd_instruments(name)
            classified = instruments["classified"].value
            accepted = instruments["accepted"].value
            activation = extended.activation_score
            if (
                extended.document_count >= config.min_documents
                and extended.should_evolve(config.tau)
            ):
                status = "evolution-pending"
            elif activation > config.tau / 2:
                status = "drifting"
            else:
                status = "ok"
            dtds[name] = {
                "status": status,
                "classified": int(classified),
                "accepted": int(accepted),
                "acceptance_rate": accepted / classified if classified else 0.0,
                "documents_recorded": extended.document_count,
                "activation_score": activation,
                "evolutions": extended.evolution_count,
            }
        degraded = sum(
            instrument.value
            for (name, _labels), instrument in self.registry._instruments.items()
            if name == "repro_degraded_ops_total"
        )
        deposit_digest = self._deposit_similarity.summary()
        summary = {
            "status": (
                "evolution-pending"
                if any(d["status"] == "evolution-pending" for d in dtds.values())
                else "drifting"
                if any(d["status"] == "drifting" for d in dtds.values())
                else "ok"
            ),
            "dtds": dtds,
            "repository": {
                "misfits": len(source.repository),
                "sigma": source.classifier.threshold,
                "last_misfit_margin": self._sigma_margin_gauge.value,
                "deposit_similarity": deposit_digest,
            },
            "evolution": {
                "total": source.evolution_count,
                "last_dtd": self._last_evolved_dtd,
                "docs_since_last": self.docs_since_evolution(),
            },
            "degraded_ops": int(degraded),
        }
        shard_map = self._shard_map()
        if shard_map is not None:
            summary["shards"] = [
                {
                    "dtds": list(shard),
                    "documents": int(
                        sum(
                            self._dtd_instruments(name)["classified"].value
                            for name in shard
                        )
                    ),
                }
                for shard in shard_map
            ]
        return summary

    def __repr__(self) -> str:
        return (
            f"DriftMonitor(dtds={self.source.dtd_names()!r}, "
            f"attached={bool(self._handlers)})"
        )
