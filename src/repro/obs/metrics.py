"""Counters, gauges, and fixed-bucket histograms with Prometheus text
exposition.

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
``(name, labels)``.  It *wraps* the engine's
:class:`~repro.perf.PerfCounters` rather than replacing them:
:meth:`MetricsRegistry.update_from_perf` mirrors a ``perf_snapshot()``
into ``repro_perf_*`` counters (the snapshot's own semantics —
monotone, merged duplicate-safe, mirrored by ``subscribe_counters`` —
are untouched), and :meth:`MetricsRegistry.observe_spans` folds a
tracer's finished spans into per-span-name latency histograms.
:meth:`MetricsRegistry.expose` renders the whole registry as Prometheus
text exposition (format 0.0.4).

Histograms use fixed upper-bound buckets (seconds by default, tuned
for the sub-millisecond classification path) and derive p50/p90/p99
summaries by linear interpolation inside the winning bucket, clamped
to the observed min/max so small samples never report a bucket bound
nothing ever reached.
"""

from __future__ import annotations

from bisect import bisect_left
from math import inf
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: default histogram upper bounds, in seconds (latency-shaped)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    if value == inf:
        return "+Inf"
    if value == -inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # format 0.0.4: HELP text escapes backslash and newline only
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: LabelItems, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in items)
    return "{" + body + "}"


class _Instrument:
    """Shared identity plumbing: name, help text, frozen labels."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        self.name = name
        self.help = help
        self.labels = labels

    def samples(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}{dict(self.labels) or ''})"


class Counter(_Instrument):
    """A monotone counter.  :meth:`inc` adds; :meth:`set_to` mirrors an
    externally maintained monotone total (a ``PerfCounters`` snapshot
    value) and refuses to go backwards."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Adopt an external monotone total (never decreases)."""
        if value > self.value:
            self.value = value

    def samples(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self.labels)} {_format_value(self.value)}"
        ]


class Gauge(_Instrument):
    """A value that may go either way."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self.labels)} {_format_value(self.value)}"
        ]


class Histogram(_Instrument):
    """A fixed-bucket histogram with interpolated percentile summaries.

    Buckets are cumulative upper bounds in Prometheus style (an
    implicit ``+Inf`` bucket catches the tail); :meth:`percentile`
    walks the cumulative counts to the target rank and interpolates
    linearly inside the winning bucket, clamping to the observed
    min/max.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self._min = inf
        self._max = -inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` in ``[0, 1]`` (0.0 when
        empty)."""
        if self.count == 0:
            return 0.0
        target = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self._max
                )
                fraction = (
                    (target - previous) / bucket_count if bucket_count else 1.0
                )
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self._min, min(self._max, estimate))
        return self._max  # pragma: no cover - cumulative always reaches count

    def summary(self) -> Dict[str, float]:
        """The JSON-friendly digest benchmarks embed."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def samples(self) -> List[str]:
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.labels, (('le', _format_value(bound)),))}"
                f" {cumulative}"
            )
        lines.append(
            f"{self.name}_bucket"
            f"{_render_labels(self.labels, (('le', '+Inf'),))} {self.count}"
        )
        lines.append(
            f"{self.name}_sum{_render_labels(self.labels)} "
            f"{_format_value(self.sum)}"
        )
        lines.append(
            f"{self.name}_count{_render_labels(self.labels)} {self.count}"
        )
        return lines


class MetricsRegistry:
    """A namespace of instruments, get-or-create by (name, labels).

    Creation is idempotent: asking twice for the same name and labels
    returns the same instrument; asking for the same name with a
    different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: "Dict[Tuple[str, LabelItems], _Instrument]" = {}

    # ------------------------------------------------------------------
    # Get-or-create
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: Mapping[str, str], **kwargs):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument
        instrument = cls(name, help, key[1], **kwargs)
        self._instruments[key] = instrument
        return instrument

    # metric name and help text are positional-only so ``name=...`` /
    # ``help=...`` stay usable as label keys (span histograms label by
    # span name)
    def counter(self, name: str, help: str = "", /, **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", /, **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        /,
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------

    def update_from_perf(self, snapshot: Mapping[str, int]) -> None:
        """Mirror a ``perf_snapshot()`` into ``repro_perf_*`` counters.

        Values are the snapshot's own (monotone) totals, so repeated
        updates are idempotent; timer entries keep their nanosecond
        unit and ``_ns`` suffix.
        """
        for name, value in snapshot.items():
            self.counter(
                f"repro_perf_{name}", f"PerfCounters.{name} mirror"
            ).set_to(value)

    def observe_spans(
        self, spans: Iterable[Any], metric: str = "repro_span_seconds"
    ) -> None:
        """Fold finished spans — :class:`~repro.obs.tracing.Span`
        objects, record tuples, or the dicts
        :func:`~repro.obs.export.load_trace` yields — into one latency
        histogram per span name."""
        for span in spans:
            if isinstance(span, tuple):
                _, _, name, start_ns, end_ns, _ = span
            elif isinstance(span, dict):
                name, start_ns, end_ns = (
                    span["name"], span["start_ns"], span["end_ns"]
                )
            else:
                name, start_ns, end_ns = span.name, span.start_ns, span.end_ns
            self.histogram(
                metric, "span latency by span name", name=name
            ).observe((end_ns - start_ns) / 1e9)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """The registry as a JSON-able digest: counters and gauges map
        to their value, histograms to their :meth:`Histogram.summary`.
        Labelled instruments key as ``name{k=v,...}`` (sorted labels),
        so the shape is stable across runs — benchmark outputs
        (``BENCH_serve.json``) embed this directly."""
        digest: Dict[str, Any] = {}
        for (name, labels), instrument in self._instruments.items():
            key = name + _render_labels(labels)
            if isinstance(instrument, Histogram):
                digest[key] = instrument.summary()
            else:
                digest[key] = instrument.value
        return digest

    def expose(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every
        instrument, grouped by metric family in registration order.

        ``# HELP`` and ``# TYPE`` appear exactly once per family —
        HELP taken from the first instrument in the family that *has*
        help text (a labelled child created without help must not
        silence the family's description), escaped per the format
        (backslash and newline); all of a family's samples are
        contiguous under its headers."""
        lines: List[str] = []
        seen_families = set()
        for (name, _labels), instrument in self._instruments.items():
            if name in seen_families:
                continue
            seen_families.add(name)
            family = [
                other
                for (other_name, _), other in self._instruments.items()
                if other_name == name
            ]
            help_text = next((m.help for m in family if m.help), "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for member in family:
                lines.extend(member.samples())
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
