"""DTD substrate: content models, parsing, validation, rewriting.

The paper represents a DTD as a labeled tree over ``EN ∪ ET ∪ OP``
(element tags, basic types ``#PCDATA``/``ANY``, and operators
``AND``/``OR``/``?``/``*``/``+`` — Section 3, Figure 2).  This subpackage
provides:

- :mod:`repro.dtd.content_model` — operator-tree content models and the
  constructors (``seq``, ``choice``, ``opt``, ``star``, ``plus``,
  ``ref``) used across the library;
- :mod:`repro.dtd.dtd` — element declarations and the :class:`DTD`
  mapping, including the paper's (cycle-guarded) tree expansion;
- :mod:`repro.dtd.parser` / :mod:`repro.dtd.serializer` — from-scratch
  DTD syntax support;
- :mod:`repro.dtd.automaton` — a Glushkov-automaton validator giving the
  boolean notion of validity (the rigid classifier the paper argues
  against, and the ground truth for the metrics);
- :mod:`repro.dtd.rewriting` — the equivalence-preserving simplification
  rules the paper applies after OR-merging (Sections 4.1 and 5).
"""

from repro.dtd.content_model import (
    AND,
    OR,
    OPT,
    STAR,
    PLUS,
    PCDATA,
    ANY,
    EMPTY,
    OPERATORS,
    BASIC_TYPES,
    seq,
    choice,
    opt,
    star,
    plus,
    ref,
    pcdata,
    any_content,
    empty,
    is_operator,
    is_basic_type,
    is_element_label,
    declared_labels,
)
from repro.dtd.dtd import DTD, ElementDecl, AttributeDecl
from repro.dtd.parser import parse_dtd, parse_content_model
from repro.dtd.serializer import serialize_dtd, serialize_content_model
from repro.dtd.automaton import (
    ContentAutomaton,
    determinism_report,
    Validator,
    ValidationReport,
    Violation,
    enumerate_language,
)
from repro.dtd.rewriting import simplify, simplify_dtd

__all__ = [
    "AND",
    "OR",
    "OPT",
    "STAR",
    "PLUS",
    "PCDATA",
    "ANY",
    "EMPTY",
    "OPERATORS",
    "BASIC_TYPES",
    "seq",
    "choice",
    "opt",
    "star",
    "plus",
    "ref",
    "pcdata",
    "any_content",
    "empty",
    "is_operator",
    "is_basic_type",
    "is_element_label",
    "declared_labels",
    "DTD",
    "ElementDecl",
    "AttributeDecl",
    "parse_dtd",
    "parse_content_model",
    "serialize_dtd",
    "serialize_content_model",
    "ContentAutomaton",
    "determinism_report",
    "Validator",
    "ValidationReport",
    "Violation",
    "enumerate_language",
    "simplify",
    "simplify_dtd",
]
