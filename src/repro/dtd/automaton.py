"""Glushkov-automaton validation of content models.

This module supplies the *boolean* notion of validity that the paper
contrasts with its numeric similarity: "classification based on
validators is very rigid, with a boolean answer" (Section 1).  We need it
for three jobs:

1. the rigid baseline classifier (experiment E4);
2. ground-truth validity in the quality metrics (E5, E7);
3. equivalence testing of the rewriting rules (language sampling).

The construction is the standard Glushkov (position) automaton: every
element-tag leaf of the content model becomes a position; ``nullable``,
``first``, ``last`` and ``follow`` are computed compositionally; a child
tag sequence is accepted iff it drives the position NFA from the start
state into a final state.  The automaton also exposes the XML 1.0
*determinism* (1-unambiguity) check: a model is deterministic iff no two
positions with the same tag compete in ``first`` or in any ``follow``
set.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD
from repro.xmltree.document import Document, Element
from repro.xmltree.tree import Tree


class ContentAutomaton:
    """Position NFA for one content model.

    Parameters
    ----------
    model:
        A content model over element-tag leaves.  ``EMPTY`` accepts only
        the empty sequence; ``ANY`` accepts everything; ``#PCDATA``
        leaves are ignored (text is checked separately by the
        :class:`Validator`).
    """

    def __init__(self, model: Tree):
        cm.check_well_formed(model)
        self.model = model
        self._is_any = cm.is_any_model(model)
        # positions: one per element-tag leaf, numbered left to right
        self._symbols: List[str] = []
        self._nullable: bool = False
        self._first: Set[int] = set()
        self._last: Set[int] = set()
        self._follow: Dict[int, Set[int]] = {}
        if not self._is_any:
            self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        nullable, first, last = self._walk(self.model)
        self._nullable = nullable
        self._first = first
        self._last = last

    def _new_position(self, symbol: str) -> int:
        position = len(self._symbols)
        self._symbols.append(symbol)
        self._follow[position] = set()
        return position

    def _walk(self, node: Tree) -> Tuple[bool, Set[int], Set[int]]:
        """Return (nullable, first, last) for ``node``, filling follow."""
        label = node.label
        if label in (cm.EMPTY, cm.PCDATA):
            return True, set(), set()
        if label == cm.ANY:  # ANY nested in a model: treat as nullable wildcard
            return True, set(), set()
        if cm.is_element_label(label):
            position = self._new_position(label)
            return False, {position}, {position}
        if label == cm.AND:
            nullable = True
            first: Set[int] = set()
            last: Set[int] = set()
            for child in node.children:
                child_nullable, child_first, child_last = self._walk(child)
                for position in last:
                    self._follow[position].update(child_first)
                if nullable:
                    first.update(child_first)
                if child_nullable:
                    last |= child_last
                else:
                    last = set(child_last)
                nullable = nullable and child_nullable
            return nullable, first, last
        if label == cm.OR:
            nullable_any = False
            first = set()
            last = set()
            for child in node.children:
                child_nullable, child_first, child_last = self._walk(child)
                nullable_any = nullable_any or child_nullable
                first |= child_first
                last |= child_last
            return nullable_any, first, last
        # unary operators
        child_nullable, child_first, child_last = self._walk(node.children[0])
        if label == cm.OPT:
            return True, child_first, child_last
        if label == cm.STAR or label == cm.PLUS:
            for position in child_last:
                self._follow[position].update(child_first)
            nullable_result = True if label == cm.STAR else child_nullable
            return nullable_result, child_first, child_last
        raise ValueError(f"unknown content-model label {label!r}")

    # ------------------------------------------------------------------
    # Acceptance
    # ------------------------------------------------------------------

    def accepts(self, tags: Sequence[str]) -> bool:
        """True iff the tag sequence is a word of the content model.

        >>> from repro.dtd.content_model import seq, star
        >>> ContentAutomaton(seq("b", star("c"))).accepts(["b", "c", "c"])
        True
        """
        if self._is_any:
            return True
        if not tags:
            return self._nullable
        current = {
            position for position in self._first if self._symbols[position] == tags[0]
        }
        if not current:
            return False
        for tag in tags[1:]:
            following: Set[int] = set()
            for position in current:
                for successor in self._follow[position]:
                    if self._symbols[successor] == tag:
                        following.add(successor)
            if not following:
                return False
            current = following
        return bool(current & self._last)

    def residual_accepts_prefix(self, tags: Sequence[str]) -> int:
        """Length of the longest prefix of ``tags`` that is a prefix of
        some word of the model (useful diagnostics for error messages)."""
        if self._is_any:
            return len(tags)
        current = set(self._first)
        matched = 0
        for tag in tags:
            following = {
                position
                for position in current
                if self._symbols[position] == tag
            }
            if not following:
                return matched
            matched += 1
            current = set()
            for position in following:
                current |= self._follow[position]
        return matched

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    def edit_alignment(
        self,
        tags: Sequence[str],
        delete_costs: Optional[Sequence[float]] = None,
        insert_costs: Optional[Dict[str, float]] = None,
    ) -> Tuple[float, List[Tuple[str, object]]]:
        """Cheapest edit script turning ``tags`` into a word of the model.

        Operations (returned in order):

        - ``("keep", index)``    — the child at ``index`` stays;
        - ``("delete", index)``  — the child at ``index`` is removed
          (cost ``delete_costs[index]``, default 1);
        - ``("insert", symbol)`` — a new ``symbol`` element is inserted
          at this point (cost ``insert_costs[symbol]``, default 1).

        Computed as a shortest path over (input position, NFA state)
        nodes with Dijkstra; insertions move along the position
        automaton without consuming input, so cycles are handled by the
        non-negative costs.  ``ANY`` models keep everything at cost 0.

        This powers document adaptation (Section 6 of the paper: "how
        to adapt documents, already stored in the source, to the new
        structure prescribed by the evolved set of DTDs").
        """
        if self._is_any:
            return 0.0, [("keep", index) for index in range(len(tags))]
        deletes = (
            list(delete_costs) if delete_costs is not None else [1.0] * len(tags)
        )
        inserts = insert_costs or {}

        import heapq

        START = -1
        length = len(tags)

        def successors(state: int):
            """(next state, consumed symbol) pairs."""
            if state == START:
                for position in self._first:
                    yield position, self._symbols[position]
            else:
                for position in self._follow[state]:
                    yield position, self._symbols[position]

        def accepting(state: int) -> bool:
            if state == START:
                return self._nullable
            return state in self._last

        # Dijkstra over nodes (index, state); parents for reconstruction
        heap: List[Tuple[float, int, int]] = [(0.0, 0, START)]
        best: Dict[Tuple[int, int], float] = {(0, START): 0.0}
        parents: Dict[Tuple[int, int], Tuple[Tuple[int, int], Tuple[str, object]]] = {}
        goal: Optional[Tuple[int, int]] = None
        while heap:
            cost, index, state = heapq.heappop(heap)
            if cost > best.get((index, state), float("inf")):
                continue
            if index == length and accepting(state):
                goal = (index, state)
                break
            moves: List[Tuple[float, Tuple[int, int], Tuple[str, object]]] = []
            if index < length:
                tag = tags[index]
                for next_state, symbol in successors(state):
                    if symbol == tag:
                        moves.append((0.0, (index + 1, next_state), ("keep", index)))
                moves.append(
                    (max(0.0, deletes[index]), (index + 1, state), ("delete", index))
                )
            for next_state, symbol in successors(state):
                moves.append(
                    (
                        max(0.0, inserts.get(symbol, 1.0)),
                        (index, next_state),
                        ("insert", symbol),
                    )
                )
            for step_cost, node, operation in moves:
                candidate = cost + step_cost
                if candidate < best.get(node, float("inf")):
                    best[node] = candidate
                    parents[node] = ((index, state), operation)
                    heapq.heappush(heap, (candidate, node[0], node[1]))
        if goal is None:  # pragma: no cover - reachable only on empty models
            return float("inf"), [("delete", index) for index in range(length)]
        operations: List[Tuple[str, object]] = []
        node = goal
        while node != (0, START):
            node, operation = parents[node]
            operations.append(operation)
        operations.reverse()
        return best[goal], operations

    def is_deterministic(self) -> bool:
        """XML 1.0 determinism (1-unambiguity) of the content model."""
        if self._is_any:
            return True

        def competing(positions: Set[int]) -> bool:
            seen: Set[str] = set()
            for position in positions:
                symbol = self._symbols[position]
                if symbol in seen:
                    return True
                seen.add(symbol)
            return False

        if competing(self._first):
            return False
        return not any(competing(follows) for follows in self._follow.values())

    @property
    def nullable(self) -> bool:
        return self._is_any or self._nullable

    @property
    def alphabet(self) -> FrozenSet[str]:
        return frozenset(self._symbols)


# ----------------------------------------------------------------------
# Document validation
# ----------------------------------------------------------------------


class Violation:
    """One validity violation found while checking a document element."""

    __slots__ = ("path", "tag", "kind", "detail")

    def __init__(self, path: str, tag: str, kind: str, detail: str):
        self.path = path
        self.tag = tag
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        return f"Violation({self.path!r}, {self.kind!r}: {self.detail!r})"


class ValidationReport:
    """The outcome of validating a document against a DTD."""

    def __init__(self, violations: List[Violation], elements_checked: int):
        self.violations = violations
        self.elements_checked = elements_checked

    @property
    def is_valid(self) -> bool:
        return not self.violations

    @property
    def invalid_element_count(self) -> int:
        return len({violation.path for violation in self.violations})

    def __bool__(self) -> bool:
        return self.is_valid

    def __repr__(self) -> str:
        status = "valid" if self.is_valid else f"{len(self.violations)} violations"
        return f"ValidationReport({status}, {self.elements_checked} elements)"


class Validator:
    """Boolean DTD validator (automata are built lazily and cached)."""

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self._automata: Dict[str, ContentAutomaton] = {}
        # per-declaration facts consulted on every element check:
        # (is_any, is_empty, allows_pcdata, is_mixed, declared_labels)
        self._decl_facts: Dict[str, Tuple[bool, bool, bool, bool, FrozenSet[str]]] = {}

    def _automaton(self, name: str) -> Optional[ContentAutomaton]:
        if name not in self._automata:
            decl = self.dtd.get(name)
            if decl is None:
                return None
            self._automata[name] = ContentAutomaton(decl.content)
        return self._automata[name]

    def _facts(self, name: str) -> Optional[Tuple[bool, bool, bool, bool, FrozenSet[str]]]:
        facts = self._decl_facts.get(name)
        if facts is None:
            decl = self.dtd.get(name)
            if decl is None:
                return None
            facts = (
                decl.is_any,
                decl.is_empty,
                cm.contains_pcdata(decl.content),
                decl.is_mixed,
                decl.declared_labels(),
            )
            self._decl_facts[name] = facts
        return facts

    def validate(self, document: Document, check_root: bool = True) -> ValidationReport:
        """Validate a whole document.

        Checks, per element: the tag is declared; the child-tag sequence
        is a word of its content model; text only appears where the
        model allows ``#PCDATA`` (or ``ANY``).  With ``check_root`` the
        root tag must equal the DTD root.
        """
        violations: List[Violation] = []
        checked = 0
        if check_root and document.root.tag != self.dtd.root:
            violations.append(
                Violation(
                    "/",
                    document.root.tag,
                    "root",
                    f"root is {document.root.tag!r}, DTD expects {self.dtd.root!r}",
                )
            )

        stack: List[Tuple[Element, str]] = [(document.root, f"/{document.root.tag}")]
        while stack:
            element, path = stack.pop()
            checked += 1
            violations.extend(self._check_element(element, path))
            for index, child in enumerate(element.element_children()):
                stack.append((child, f"{path}/{child.tag}[{index}]"))
        return ValidationReport(violations, checked)

    def is_valid(self, document: Document, check_root: bool = True) -> bool:
        """Boolean equivalent of :meth:`validate`, but fail-fast.

        Stops at the first violation instead of collecting a full
        report, and skips path-string construction entirely — this is
        the hot pre-pass of the classification fast path (tier 1), so
        the invalid case must stay as cheap as the valid one.
        """
        if check_root and document.root.tag != self.dtd.root:
            return False
        stack: List[Element] = [document.root]
        while stack:
            element = stack.pop()
            if not self._element_is_valid(element):
                return False
            stack.extend(element.element_children())
        return True

    def _element_is_valid(self, element: Element) -> bool:
        """One element's checks, mirroring :meth:`_check_element` exactly."""
        facts = self._facts(element.tag)
        if facts is None:
            return False
        is_any, is_empty, allows_pcdata, is_mixed, allowed = facts
        if is_any:
            return True
        if is_empty:
            return not element.children
        if not allows_pcdata and element.has_text():
            return False
        if is_mixed:
            return all(child.tag in allowed for child in element.element_children())
        automaton = self._automaton(element.tag)
        assert automaton is not None  # decl exists
        return automaton.accepts(element.child_tags())

    def _check_element(self, element: Element, path: str) -> List[Violation]:
        decl = self.dtd.get(element.tag)
        if decl is None:
            return [
                Violation(path, element.tag, "undeclared", "element is not declared")
            ]
        if decl.is_any:
            return []
        violations: List[Violation] = []
        if decl.is_empty:
            if element.children:
                violations.append(
                    Violation(path, element.tag, "content", "declared EMPTY but has content")
                )
            return violations
        if element.has_text() and not cm.contains_pcdata(decl.content):
            violations.append(
                Violation(path, element.tag, "text", "text content is not allowed")
            )
        if decl.is_mixed:
            allowed = decl.declared_labels()
            for child in element.element_children():
                if child.tag not in allowed:
                    violations.append(
                        Violation(
                            path,
                            element.tag,
                            "mixed",
                            f"tag {child.tag!r} not allowed in mixed content",
                        )
                    )
            return violations
        tags = element.child_tags()
        automaton = self._automaton(element.tag)
        assert automaton is not None  # decl exists
        if not automaton.accepts(tags):
            matched = automaton.residual_accepts_prefix(tags)
            violations.append(
                Violation(
                    path,
                    element.tag,
                    "model",
                    f"children {tags!r} do not match "
                    f"{decl.content.to_tuple()!r} (diverges at index {matched})",
                )
            )
        return violations


def determinism_report(dtd: DTD) -> Dict[str, bool]:
    """Per-declaration XML 1.0 determinism (1-unambiguity) verdicts.

    Evolved DTDs are language-correct but a misc-window OR-merge can
    produce content models real XML parsers reject as nondeterministic
    (e.g. ``((b, c) | (b, d))``).  This report lets callers decide
    whether to ship such a DTD or re-run the evolution with a larger
    psi; ``all(report.values())`` means every declaration is fine.

    >>> from repro.dtd.parser import parse_dtd
    >>> determinism_report(parse_dtd("<!ELEMENT a (b, c)>"))
    {'a': True}
    """
    return {
        decl.name: ContentAutomaton(decl.content).is_deterministic()
        for decl in dtd
    }


# ----------------------------------------------------------------------
# Language sampling (for rewriting-equivalence tests)
# ----------------------------------------------------------------------


def enumerate_language(
    model: Tree, max_length: int = 6, max_words: int = 2000
) -> List[Tuple[str, ...]]:
    """Enumerate words of the content model up to ``max_length``.

    Deterministic (sorted) and truncated at ``max_words``; used by the
    property tests to check that :mod:`repro.dtd.rewriting` preserves the
    language and by the metrics layer for generality estimates.
    """
    alphabet = sorted(cm.declared_labels(model))
    automaton = ContentAutomaton(model)
    words: List[Tuple[str, ...]] = []
    for length in range(max_length + 1):
        for word in itertools.product(alphabet, repeat=length):
            if automaton.accepts(word):
                words.append(word)
                if len(words) >= max_words:
                    return words
    return words


def language_equal(
    left: Tree, right: Tree, max_length: int = 6, max_words: int = 2000
) -> bool:
    """Bounded language-equality check used in tests."""
    return enumerate_language(left, max_length, max_words) == enumerate_language(
        right, max_length, max_words
    )
