"""Equivalence-preserving DTD re-writing rules.

Section 4.1 of the paper: after the misc-window merge "a better
formulation of the DTD is then obtained by means of DTD re-writing rules
like the ones described in [2], that allows one to rewrite a DTD in a
simpler, yet equivalent one" — equivalent meaning *with the same set of
valid documents*.  This module implements that rule set as a fixpoint of
local rewrites, each of which preserves the content model's language
(property-tested against the Glushkov automaton):

R1  flatten      — ``AND(x, AND(y, z)) -> AND(x, y, z)`` and same for OR
R2  singleton    — ``AND(x) -> x``, ``OR(x) -> x``
R3  dedupe       — ``OR(x, y, x) -> OR(x, y)`` (identical alternatives)
R4  stacking     — collapse nested unary operators by the join table,
                   e.g. ``(x*)? -> x*``, ``(x+)* -> x*``, ``(x?)? -> x?``
R5  or-opt       — ``OR(..., x?, ...) -> OR(..., x, ...)?`` : an optional
                   alternative makes the whole choice optional
R6  star-or-plus — ``STAR(OR(..., y+, ...)) -> STAR(OR(..., y, ...))``
                   (and the same under an outer ``+``/``*`` for any
                   nullable-irrelevant inner suffix)
R7  and-empty    — drop ``EMPTY`` children of AND/OR with >= 2 children;
                   ``AND() -> EMPTY``
R8  plus-nullable— ``PLUS(x) -> STAR(x)`` when ``x`` is nullable

The public entry points are :func:`simplify` (one content model) and
:func:`simplify_dtd` (every declaration of a DTD, returning a new DTD).
"""

from __future__ import annotations

from typing import Optional

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD, ElementDecl
from repro.xmltree.tree import Tree

#: Join table for stacked unary operators: outer, inner -> combined.
_STACKING = {
    (cm.OPT, cm.OPT): cm.OPT,
    (cm.OPT, cm.STAR): cm.STAR,
    (cm.OPT, cm.PLUS): cm.STAR,
    (cm.STAR, cm.OPT): cm.STAR,
    (cm.STAR, cm.STAR): cm.STAR,
    (cm.STAR, cm.PLUS): cm.STAR,
    (cm.PLUS, cm.OPT): cm.STAR,
    (cm.PLUS, cm.STAR): cm.STAR,
    (cm.PLUS, cm.PLUS): cm.PLUS,
}


def _rewrite_once(node: Tree) -> Optional[Tree]:
    """Apply the first applicable rule at this vertex; None if stable."""
    label = node.label

    # R4: stacked unary operators
    if label in cm.UNARY_OPERATORS:
        child = node.children[0]
        if child.label in cm.UNARY_OPERATORS:
            combined = _STACKING[(label, child.label)]
            return Tree(combined, [child.children[0]])
        # R8: PLUS over a nullable body is STAR
        if label == cm.PLUS and cm.nullable(child):
            return Tree(cm.STAR, [child])
        # unary over EMPTY is EMPTY; unary over #PCDATA is #PCDATA
        # (text content already admits the empty string and any length)
        if child.label == cm.EMPTY:
            return Tree.leaf(cm.EMPTY)
        if child.label == cm.PCDATA:
            return Tree.leaf(cm.PCDATA)

    if label in cm.NARY_OPERATORS:
        # R1: flatten same-operator nesting
        if any(child.label == label for child in node.children):
            flattened = []
            for child in node.children:
                if child.label == label:
                    flattened.extend(child.children)
                else:
                    flattened.append(child)
            return Tree(label, flattened)
        # R7: drop EMPTY children (they contribute nothing to AND; an
        # EMPTY alternative in OR makes it nullable, so wrap with ?)
        if any(child.label == cm.EMPTY for child in node.children):
            kept = [child for child in node.children if child.label != cm.EMPTY]
            if not kept:
                return Tree.leaf(cm.EMPTY)
            replacement = Tree(label, kept) if len(kept) > 1 else kept[0]
            if label == cm.OR:
                return Tree(cm.OPT, [replacement])
            return replacement
        # R2: singleton collapse
        if len(node.children) == 1:
            return node.children[0]
        if label == cm.OR:
            # R3: dedupe identical alternatives
            seen = []
            deduped = []
            for child in node.children:
                key = child.to_tuple()
                if key not in seen:
                    seen.append(key)
                    deduped.append(child)
            if len(deduped) < len(node.children):
                return Tree(cm.OR, deduped)
            # R5: hoist optional alternatives out of the choice
            if any(child.label == cm.OPT for child in node.children):
                unwrapped = [
                    child.children[0] if child.label == cm.OPT else child
                    for child in node.children
                ]
                return Tree(cm.OPT, [Tree(cm.OR, unwrapped)])

    # R6: suffix absorption under an unbounded-repetition context
    if label in (cm.STAR, cm.PLUS):
        child = node.children[0]
        if child.label == cm.OR and any(
            grandchild.label in (cm.PLUS, cm.STAR, cm.OPT)
            for grandchild in child.children
        ):
            # STAR(OR(.., y+, ..)) == STAR(OR(.., y, ..));
            # an OPT/STAR alternative additionally makes the body nullable,
            # so a PLUS outer weakens to STAR.
            makes_nullable = any(
                grandchild.label in (cm.OPT, cm.STAR) for grandchild in child.children
            )
            unwrapped = [
                grandchild.children[0]
                if grandchild.label in (cm.PLUS, cm.STAR, cm.OPT)
                else grandchild
                for grandchild in child.children
            ]
            outer = cm.STAR if (label == cm.STAR or makes_nullable) else cm.PLUS
            return Tree(outer, [Tree(cm.OR, unwrapped)])

    return None


def simplify(model: Tree, max_rounds: int = 200) -> Tree:
    """Rewrite ``model`` to a simpler, language-equivalent content model.

    Runs the rule set bottom-up to a fixpoint.  The input tree is not
    mutated.

    >>> from repro.dtd.content_model import seq, star, opt
    >>> from repro.dtd.serializer import serialize_content_model
    >>> serialize_content_model(simplify(opt(star(seq("b")))))
    '(b*)'
    """
    current = model.copy()
    for _round in range(max_rounds):
        rewritten = _simplify_pass(current)
        if rewritten == current:
            return current
        current = rewritten
    return current


def _simplify_pass(node: Tree) -> Tree:
    children = [_simplify_pass(child) for child in node.children]
    candidate = Tree(node.label, children)
    rewritten = _rewrite_once(candidate)
    while rewritten is not None:
        candidate = rewritten
        rewritten = _rewrite_once(candidate)
    return candidate


def normalize_mixed(model: Tree) -> Tree:
    """Force a model that mentions ``#PCDATA`` into legal XML 1.0 form.

    XML allows text content only as ``(#PCDATA)`` or as mixed content
    ``(#PCDATA | a | b)*``.  Evolution can OR-merge an old ``(#PCDATA)``
    declaration with a rebuilt element model, producing a tree that is
    meaningful but not expressible in DTD syntax; this widens such a
    tree to the mixed content over all its labels (the tightest legal
    superset).  Models without ``#PCDATA``, and already-legal text
    models, pass through untouched.
    """
    if not cm.contains_pcdata(model):
        return model
    if cm.is_mixed_model(model):
        return model
    labels = sorted(cm.declared_labels(model))
    if not labels:
        return cm.pcdata()
    return cm.mixed(*labels)


def simplify_dtd(dtd: DTD) -> DTD:
    """Return a new DTD with every content model simplified."""
    result = DTD(name=dtd.name)
    for decl in dtd:
        result.add(ElementDecl(decl.name, simplify(decl.content)))
    result.attlists = {tag: list(attrs) for tag, attrs in dtd.attlists.items()}
    if dtd.element_names():
        result.root = dtd.root
    return result
