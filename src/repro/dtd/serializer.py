"""DTD serialization — the inverse of :mod:`repro.dtd.parser`.

Operator trees are rendered back to XML 1.0 content-model syntax.  The
output always re-parses to an equal tree (round-trip tested), which
matters because the evolution phase emits *new* DTDs that downstream
validators must be able to consume.
"""

from __future__ import annotations

from typing import List

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD, AttributeDecl, ElementDecl
from repro.xmltree.tree import Tree


def _render(model: Tree, top_level: bool) -> str:
    """Render a content-model subtree.

    ``top_level`` is True only for the outermost call: XML requires the
    whole model to be parenthesised (unless ``EMPTY``/``ANY``), so a bare
    leaf like ``b`` must come out as ``(b)`` at top level but plain ``b``
    when nested.
    """
    label = model.label
    if label == cm.EMPTY:
        return "EMPTY"
    if label == cm.ANY:
        return "ANY"
    if label == cm.PCDATA:
        return "(#PCDATA)" if top_level else "#PCDATA"
    if cm.is_element_label(label):
        return f"({label})" if top_level else label

    if label in (cm.AND, cm.OR):
        separator = ", " if label == cm.AND else " | "
        inner = separator.join(_render(child, False) for child in model.children)
        return f"({inner})"

    # unary ?/*/+: the child must be a name or a parenthesised group
    child = model.children[0]
    if child.label == cm.PCDATA:
        # XML allows text repetition only as "(#PCDATA)*"; ? and + over
        # text are language-equivalent to plain "(#PCDATA)"
        return f"({cm.PCDATA})*" if label == cm.STAR else f"({cm.PCDATA})"
    rendered = _render(child, False)
    if not (rendered.startswith("(") or _is_bare_name(rendered)):
        rendered = f"({rendered})"
    if rendered.endswith(("?", "*", "+")):  # stacked suffixes need a group
        rendered = f"({rendered})"
    suffixed = rendered + label
    return f"({suffixed})" if top_level and _is_bare_name(rendered) else suffixed


def _is_bare_name(rendered: str) -> bool:
    return rendered.isidentifier() or (
        bool(rendered) and not any(ch in rendered for ch in "()|,? *+")
    )


def serialize_content_model(model: Tree) -> str:
    """Render a content model to its DTD syntax.

    >>> from repro.dtd.content_model import seq, star, choice
    >>> serialize_content_model(seq("b", star(choice("c", "d"))))
    '(b, (c | d)*)'
    """
    return _render(model, top_level=True)


def serialize_element_decl(decl: ElementDecl) -> str:
    """Render one ``<!ELEMENT>`` declaration."""
    return f"<!ELEMENT {decl.name} {serialize_content_model(decl.content)}>"


def serialize_attlist(element_name: str, attributes: List[AttributeDecl]) -> str:
    """Render one ``<!ATTLIST>`` declaration."""
    body = "\n".join(
        f"  {attr.name} {attr.type_spec} {attr.default_spec}" for attr in attributes
    )
    return f"<!ATTLIST {element_name}\n{body}\n>"


def serialize_dtd(dtd: DTD) -> str:
    """Render a whole DTD, declarations in insertion order."""
    pieces: List[str] = []
    for decl in dtd:
        pieces.append(serialize_element_decl(decl))
        if decl.name in dtd.attlists:
            pieces.append(serialize_attlist(decl.name, dtd.attlists[decl.name]))
    for element_name, attributes in dtd.attlists.items():
        if element_name not in dtd:
            pieces.append(serialize_attlist(element_name, attributes))
    return "\n".join(pieces) + "\n"
