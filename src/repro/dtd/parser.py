"""A from-scratch DTD parser.

Parses the subset of XML 1.0 DTD syntax the reproduction needs —
``<!ELEMENT>`` with full content-model syntax (``EMPTY``, ``ANY``, mixed
content, sequences, choices, ``?``/``*``/``+`` suffixes), ``<!ATTLIST>``
(captured verbatim per attribute), comments, and processing
instructions.  ``<!ENTITY>`` and ``<!NOTATION>`` declarations are
recognised and skipped; parameter-entity *references* are rejected with
a clear error (resolving them requires external storage the paper's
setting does not assume).

Content models are produced as operator trees
(:mod:`repro.dtd.content_model`), i.e. directly in the paper's
labeled-tree vocabulary: ``,`` becomes ``AND``, ``|`` becomes ``OR`` and
the suffixes become unary operator vertices.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import DTDSyntaxError
from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD, AttributeDecl, ElementDecl
from repro.xmltree.tree import Tree

_NAME_EXTRA = set("_:-.")


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in "_:"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _DTDScanner:
    """Cursor over DTD source text with location-aware errors."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.length = len(source)

    def error(self, message: str) -> DTDSyntaxError:
        line = self.source.count("\n", 0, self.pos) + 1
        column = self.pos - self.source.rfind("\n", 0, self.pos)
        return DTDSyntaxError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.source[self.pos] if self.pos < self.length else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def starts_with(self, token: str) -> bool:
        return self.source.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.starts_with(token):
            raise self.error(f"expected {token!r}")
        self.advance(len(token))

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.peek() in " \t\r\n":
            self.advance()

    def require_whitespace(self) -> None:
        if self.at_end() or self.peek() not in " \t\r\n":
            raise self.error("expected whitespace")
        self.skip_whitespace()

    def read_name(self) -> str:
        if self.at_end() or not _is_name_start(self.peek()):
            raise self.error("expected a name")
        start = self.pos
        self.advance()
        while not self.at_end() and _is_name_char(self.peek()):
            self.advance()
        return self.source[start : self.pos]

    def read_quoted(self) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted literal")
        self.advance()
        end = self.source.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated literal")
        value = self.source[self.pos : end]
        self.pos = end + 1
        return value


# ----------------------------------------------------------------------
# Content models
# ----------------------------------------------------------------------


def _read_suffix(scanner: _DTDScanner, model: Tree) -> Tree:
    char = scanner.peek()
    if char == cm.OPT:
        scanner.advance()
        return Tree(cm.OPT, [model])
    if char == cm.STAR:
        scanner.advance()
        return Tree(cm.STAR, [model])
    if char == cm.PLUS:
        scanner.advance()
        return Tree(cm.PLUS, [model])
    return model


def _parse_cp(scanner: _DTDScanner) -> Tree:
    """Parse a content particle: name or parenthesised group, plus suffix."""
    scanner.skip_whitespace()
    if scanner.peek() == "(":
        group = _parse_group(scanner)
        return _read_suffix(scanner, group)
    if scanner.peek() == "%":
        raise scanner.error("parameter-entity references are not supported")
    name = scanner.read_name()
    return _read_suffix(scanner, Tree.leaf(name))


def _parse_group(scanner: _DTDScanner) -> Tree:
    """Parse ``( ... )`` — a choice, a sequence, or mixed content."""
    scanner.expect("(")
    scanner.skip_whitespace()
    if scanner.starts_with(cm.PCDATA):
        return _parse_mixed_tail(scanner)
    first = _parse_cp(scanner)
    scanner.skip_whitespace()
    separator = scanner.peek()
    if separator == ")":
        scanner.advance()
        return first
    if separator not in (",", "|"):
        raise scanner.error("expected ',', '|' or ')' in a content group")
    particles = [first]
    while scanner.peek() == separator:
        scanner.advance()
        particles.append(_parse_cp(scanner))
        scanner.skip_whitespace()
        if scanner.peek() not in (separator, ")"):
            raise scanner.error(
                "cannot mix ',' and '|' at the same nesting level"
            )
    scanner.expect(")")
    operator = cm.AND if separator == "," else cm.OR
    return Tree(operator, particles)


def _parse_mixed_tail(scanner: _DTDScanner) -> Tree:
    """Parse the remainder of ``(#PCDATA ...`` after the open paren."""
    scanner.expect(cm.PCDATA)
    scanner.skip_whitespace()
    names: List[str] = []
    while scanner.peek() == "|":
        scanner.advance()
        scanner.skip_whitespace()
        names.append(scanner.read_name())
        scanner.skip_whitespace()
    scanner.expect(")")
    if names:
        scanner.expect(cm.STAR)  # XML 1.0 requires the trailing *
        return cm.mixed(*names)
    if scanner.peek() == cm.STAR:  # (#PCDATA)* is legal and equivalent
        scanner.advance()
    return cm.pcdata()


def parse_content_model(source: str) -> Tree:
    """Parse a standalone content-model string.

    >>> parse_content_model("(b, c)").to_tuple()
    ('AND', ['b', 'c'])
    >>> parse_content_model("(b | c)*").to_tuple()
    ('*', [('OR', ['b', 'c'])])
    """
    scanner = _DTDScanner(source.strip())
    model = _parse_content(scanner)
    scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("trailing characters after the content model")
    cm.check_well_formed(model)
    return model


def _parse_content(scanner: _DTDScanner) -> Tree:
    scanner.skip_whitespace()
    if scanner.starts_with("EMPTY"):
        scanner.advance(len("EMPTY"))
        return cm.empty()
    if scanner.starts_with("ANY"):
        scanner.advance(len("ANY"))
        return cm.any_content()
    if scanner.peek() != "(":
        raise scanner.error("expected '(', 'EMPTY' or 'ANY'")
    group = _parse_group(scanner)
    return _read_suffix(scanner, group)


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


def _parse_element_decl(scanner: _DTDScanner) -> ElementDecl:
    scanner.expect("<!ELEMENT")
    scanner.require_whitespace()
    name = scanner.read_name()
    scanner.require_whitespace()
    content = _parse_content(scanner)
    scanner.skip_whitespace()
    scanner.expect(">")
    return ElementDecl(name, content)


def _parse_attlist(scanner: _DTDScanner) -> Tuple[str, List[AttributeDecl]]:
    scanner.expect("<!ATTLIST")
    scanner.require_whitespace()
    element_name = scanner.read_name()
    attributes: List[AttributeDecl] = []
    while True:
        scanner.skip_whitespace()
        if scanner.peek() == ">":
            scanner.advance()
            return element_name, attributes
        attr_name = scanner.read_name()
        scanner.require_whitespace()
        type_spec = _read_attribute_type(scanner)
        scanner.require_whitespace()
        default_spec = _read_default_spec(scanner)
        attributes.append(AttributeDecl(attr_name, type_spec, default_spec))


def _read_attribute_type(scanner: _DTDScanner) -> str:
    if scanner.peek() == "(":  # enumerated type
        depth = 0
        start = scanner.pos
        while not scanner.at_end():
            char = scanner.peek()
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    scanner.advance()
                    return scanner.source[start : scanner.pos]
            scanner.advance()
        raise scanner.error("unterminated enumerated attribute type")
    type_name = scanner.read_name()
    if type_name == "NOTATION":
        scanner.skip_whitespace()
        if scanner.peek() == "(":
            rest_start = scanner.pos
            _read_attribute_type(scanner)  # consume the group
            return "NOTATION " + scanner.source[rest_start : scanner.pos]
    return type_name


def _read_default_spec(scanner: _DTDScanner) -> str:
    if scanner.peek() == "#":
        start = scanner.pos
        scanner.advance()
        keyword = scanner.read_name()
        if keyword == "FIXED":
            scanner.require_whitespace()
            value = scanner.read_quoted()
            return f'#FIXED "{value}"'
        return scanner.source[start : scanner.pos]
    value = scanner.read_quoted()
    return f'"{value}"'


def _skip_bang_declaration(scanner: _DTDScanner) -> None:
    """Skip <!ENTITY ...> / <!NOTATION ...>, minding quoted literals."""
    while not scanner.at_end():
        char = scanner.peek()
        if char in ("'", '"'):
            scanner.read_quoted()
        elif char == ">":
            scanner.advance()
            return
        else:
            scanner.advance()
    raise scanner.error("unterminated declaration")


def parse_dtd(source: str, name: str = "dtd", root: Optional[str] = None) -> DTD:
    """Parse DTD source text into a :class:`DTD`.

    >>> dtd = parse_dtd('''
    ...   <!ELEMENT a (b, c)>
    ...   <!ELEMENT b (#PCDATA)>
    ...   <!ELEMENT c (d)>
    ...   <!ELEMENT d (#PCDATA)>
    ... ''')
    >>> dtd.root
    'a'
    """
    scanner = _DTDScanner(source)
    dtd = DTD(name=name)
    while True:
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.starts_with("<!--"):
            end = scanner.source.find("-->", scanner.pos)
            if end < 0:
                raise scanner.error("unterminated comment")
            scanner.pos = end + 3
        elif scanner.starts_with("<?"):
            end = scanner.source.find("?>", scanner.pos)
            if end < 0:
                raise scanner.error("unterminated processing instruction")
            scanner.pos = end + 2
        elif scanner.starts_with("<!ELEMENT"):
            dtd.add(_parse_element_decl(scanner))
        elif scanner.starts_with("<!ATTLIST"):
            element_name, attributes = _parse_attlist(scanner)
            dtd.attlists.setdefault(element_name, []).extend(attributes)
        elif scanner.starts_with("<!ENTITY") or scanner.starts_with("<!NOTATION"):
            _skip_bang_declaration(scanner)
        else:
            raise scanner.error("expected a declaration")
    if root is not None:
        dtd.root = root
    return dtd
