"""DTD object model.

A :class:`DTD` is an ordered mapping from element names to
:class:`ElementDecl` content models (plus any ``ATTLIST`` declarations,
preserved for round-tripping).  It also implements the paper's
labeled-tree view of a DTD: :meth:`DTD.to_tree` expands the root
declaration, inlining sub-declarations, with a cycle guard so recursive
DTDs terminate (recursive references beyond the guard stay as plain
element leaves).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DTDSemanticError
from repro.dtd import content_model as cm
from repro.xmltree.tree import Tree


class AttributeDecl:
    """One attribute of an ``<!ATTLIST>`` declaration (kept verbatim)."""

    __slots__ = ("name", "type_spec", "default_spec")

    def __init__(self, name: str, type_spec: str, default_spec: str):
        self.name = name
        self.type_spec = type_spec
        self.default_spec = default_spec

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributeDecl):
            return NotImplemented
        return (
            self.name == other.name
            and self.type_spec == other.type_spec
            and self.default_spec == other.default_spec
        )

    def __repr__(self) -> str:
        return f"AttributeDecl({self.name!r}, {self.type_spec!r}, {self.default_spec!r})"


class ElementDecl:
    """An ``<!ELEMENT name content>`` declaration.

    ``content`` is an operator tree per
    :mod:`repro.dtd.content_model`; it is checked for well-formedness at
    construction time.
    """

    __slots__ = ("name", "content")

    def __init__(self, name: str, content: Tree):
        cm.check_well_formed(content)
        self.name = name
        self.content = content

    @property
    def is_empty(self) -> bool:
        return cm.is_empty_model(self.content)

    @property
    def is_any(self) -> bool:
        return cm.is_any_model(self.content)

    @property
    def is_mixed(self) -> bool:
        return cm.is_mixed_model(self.content)

    def declared_labels(self) -> FrozenSet[str]:
        """The paper's ``alphabeta`` of this declaration (operator-skipping)."""
        return cm.declared_labels(self.content)

    def copy(self) -> "ElementDecl":
        return ElementDecl(self.name, self.content.copy())

    def __eq__(self, other) -> bool:
        if not isinstance(other, ElementDecl):
            return NotImplemented
        return self.name == other.name and self.content == other.content

    def __repr__(self) -> str:
        return f"ElementDecl({self.name!r}, {self.content.to_tuple()!r})"


class DTD:
    """A document type definition: named element declarations + attlists.

    The insertion order of declarations is preserved (it determines
    serialization order and, absent an explicit ``root``, the default
    root element: the first declared one, matching common practice).
    """

    def __init__(
        self,
        declarations: Optional[Sequence[ElementDecl]] = None,
        root: Optional[str] = None,
        name: str = "dtd",
    ):
        self.name = name
        self._declarations: Dict[str, ElementDecl] = {}
        self.attlists: Dict[str, List[AttributeDecl]] = {}
        for decl in declarations or []:
            self.add(decl)
        if root is not None and root not in self._declarations:
            raise DTDSemanticError(f"root element {root!r} is not declared")
        self._root = root

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------

    def add(self, decl: ElementDecl, replace: bool = False) -> None:
        """Add a declaration; duplicates are an error unless ``replace``."""
        if decl.name in self._declarations and not replace:
            raise DTDSemanticError(f"duplicate declaration for element {decl.name!r}")
        self._declarations[decl.name] = decl

    def remove(self, name: str) -> None:
        """Remove a declaration (``KeyError`` if absent)."""
        del self._declarations[name]
        if self._root == name:
            self._root = None

    def __contains__(self, name: str) -> bool:
        return name in self._declarations

    def __getitem__(self, name: str) -> ElementDecl:
        return self._declarations[name]

    def get(self, name: str) -> Optional[ElementDecl]:
        return self._declarations.get(name)

    def __iter__(self) -> Iterator[ElementDecl]:
        return iter(self._declarations.values())

    def __len__(self) -> int:
        return len(self._declarations)

    def element_names(self) -> List[str]:
        return list(self._declarations)

    @property
    def root(self) -> str:
        """The root element name (explicit, or the first declared)."""
        if self._root is not None:
            return self._root
        if not self._declarations:
            raise DTDSemanticError("the DTD declares no elements")
        return next(iter(self._declarations))

    @root.setter
    def root(self, name: str) -> None:
        if name not in self._declarations:
            raise DTDSemanticError(f"root element {name!r} is not declared")
        self._root = name

    def copy(self) -> "DTD":
        clone = DTD(name=self.name)
        for decl in self:
            clone.add(decl.copy())
        clone.attlists = {
            tag: list(attrs) for tag, attrs in self.attlists.items()
        }
        clone._root = self._root
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, DTD):
            return NotImplemented
        return (
            self._declarations == other._declarations and self.root == other.root
        )

    def __repr__(self) -> str:
        return f"DTD({self.name!r}, elements={self.element_names()!r})"

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------

    def undeclared_references(self) -> FrozenSet[str]:
        """Element tags referenced in content models but never declared."""
        missing = set()
        for decl in self:
            for label in decl.declared_labels():
                if label not in self._declarations:
                    missing.add(label)
        return frozenset(missing)

    def check_consistent(self, allow_undeclared: bool = False) -> None:
        """Raise :class:`DTDSemanticError` on dangling references."""
        missing = self.undeclared_references()
        if missing and not allow_undeclared:
            raise DTDSemanticError(
                "content models reference undeclared elements: "
                + ", ".join(sorted(missing))
            )

    def size(self) -> int:
        """Total vertex count over all content models (conciseness)."""
        return sum(decl.content.size() for decl in self)

    # ------------------------------------------------------------------
    # Labeled-tree view (paper Figure 2(d))
    # ------------------------------------------------------------------

    def to_tree(self, root: Optional[str] = None, max_depth: int = 32) -> Tree:
        """Expand the DTD into the paper's labeled tree.

        Each element vertex is labeled with its tag and has (a copy of)
        its content model hanging below it, with element leaves of the
        content model recursively expanded into element vertices.  A
        per-path cycle guard stops recursive DTDs: a tag already open on
        the current path (or deeper than ``max_depth``) stays a leaf.
        """
        root_name = root if root is not None else self.root

        def expand(tag: str, open_tags: Tuple[str, ...], depth: int) -> Tree:
            decl = self.get(tag)
            if decl is None or tag in open_tags or depth > max_depth:
                return Tree.leaf(tag)
            if decl.is_empty:
                return Tree(tag)
            inner = self._expand_model(
                decl.content, open_tags + (tag,), depth, expand
            )
            return Tree(tag, [inner])

        return expand(root_name, (), 0)

    @staticmethod
    def _expand_model(model: Tree, open_tags, depth, expand) -> Tree:
        if cm.is_element_label(model.label):
            return expand(model.label, open_tags, depth + 1)
        if cm.is_basic_type(model.label):
            return Tree.leaf(model.label)
        children = [
            DTD._expand_model(child, open_tags, depth, expand)
            for child in model.children
        ]
        return Tree(model.label, children)
