"""Operator-tree content models.

A content model is a :class:`~repro.xmltree.tree.Tree` whose internal
vertices are labeled with operators and whose leaves are element tags or
basic types, exactly the paper's DTD tree representation (Figure 2(d)):

- ``AND`` — a sequence ``(a, b, ...)``;
- ``OR`` — an alternative ``(a | b | ...)`` (at least one branch taken);
- ``?`` — optional (0 or 1);
- ``*`` — repeatable, possibly absent (0+);
- ``+`` — repeatable, at least once (1+);
- leaves — element tags from ``EN``, or the basic types ``#PCDATA`` and
  ``ANY`` from ``ET``; the extra leaf ``EMPTY`` marks declared-empty
  content (the paper folds this into the tree representation implicitly;
  we make it explicit so every DTD round-trips).

This module owns the vocabulary and the small algebra every other layer
builds on: constructors, predicates, the paper's ``alphabeta`` for DTD
trees (:func:`declared_labels`), and occurrence-bound analysis
(:func:`occurrence_bounds`) used by the operator-restriction rules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from repro.xmltree.tree import Tree

AND = "AND"
OR = "OR"
OPT = "?"
STAR = "*"
PLUS = "+"

PCDATA = "#PCDATA"
ANY = "ANY"
EMPTY = "EMPTY"

#: The paper's ``OP`` label set.
OPERATORS = frozenset({AND, OR, OPT, STAR, PLUS})
#: The paper's ``ET`` label set (``EMPTY`` added for round-tripping).
BASIC_TYPES = frozenset({PCDATA, ANY, EMPTY})
#: Operators taking exactly one child.
UNARY_OPERATORS = frozenset({OPT, STAR, PLUS})
#: Operators taking one or more children.
NARY_OPERATORS = frozenset({AND, OR})

#: A practical infinity for occurrence upper bounds.
UNBOUNDED = 1 << 30


def is_operator(label: str) -> bool:
    """True for ``AND``/``OR``/``?``/``*``/``+``."""
    return label in OPERATORS


def is_basic_type(label: str) -> bool:
    """True for ``#PCDATA``/``ANY``/``EMPTY``."""
    return label in BASIC_TYPES


def is_element_label(label: str) -> bool:
    """True for labels that are element tags (neither operator nor type)."""
    return label not in OPERATORS and label not in BASIC_TYPES


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------


def _as_tree(item) -> Tree:
    return Tree.leaf(item) if isinstance(item, str) else item


def ref(name: str) -> Tree:
    """A leaf referencing element ``name``."""
    return Tree.leaf(name)


def seq(*items) -> Tree:
    """Sequence ``(a, b, ...)``; strings are promoted to leaves.

    A single item is returned unwrapped (an ``AND`` of one thing is the
    thing itself) and an empty call yields ``EMPTY``.
    """
    trees = [_as_tree(item) for item in items]
    if not trees:
        return empty()
    if len(trees) == 1:
        return trees[0]
    return Tree(AND, trees)


def choice(*items) -> Tree:
    """Alternative ``(a | b | ...)``; same promotion rules as :func:`seq`."""
    trees = [_as_tree(item) for item in items]
    if not trees:
        return empty()
    if len(trees) == 1:
        return trees[0]
    return Tree(OR, trees)


def opt(item) -> Tree:
    """Optional occurrence ``item?``."""
    return Tree(OPT, [_as_tree(item)])


def star(item) -> Tree:
    """Zero-or-more occurrence ``item*``."""
    return Tree(STAR, [_as_tree(item)])


def plus(item) -> Tree:
    """One-or-more occurrence ``item+``."""
    return Tree(PLUS, [_as_tree(item)])


def pcdata() -> Tree:
    """Text-only content (``(#PCDATA)``)."""
    return Tree.leaf(PCDATA)


def any_content() -> Tree:
    """Unconstrained content (``ANY``)."""
    return Tree.leaf(ANY)


def empty() -> Tree:
    """Declared-empty content (``EMPTY``)."""
    return Tree.leaf(EMPTY)


def mixed(*names: str) -> Tree:
    """Mixed content ``(#PCDATA | a | b)*`` per XML 1.0.

    ``mixed()`` with no names degenerates to plain ``(#PCDATA)``.
    """
    if not names:
        return pcdata()
    return star(Tree(OR, [pcdata()] + [ref(name) for name in names]))


# ----------------------------------------------------------------------
# Structure checks and queries
# ----------------------------------------------------------------------


def check_well_formed(model: Tree) -> None:
    """Raise ``ValueError`` if ``model`` is not a well-formed content model.

    Rules: unary operators have exactly one child, n-ary operators at
    least one, leaves are element tags or basic types (never operators),
    and basic types have no children.
    """
    for node in model.iter_preorder():
        if node.label in UNARY_OPERATORS:
            if len(node.children) != 1:
                raise ValueError(
                    f"operator {node.label!r} requires exactly one child, "
                    f"found {len(node.children)}"
                )
        elif node.label in NARY_OPERATORS:
            if not node.children:
                raise ValueError(f"operator {node.label!r} requires children")
        elif is_basic_type(node.label):
            if node.children:
                raise ValueError(f"basic type {node.label!r} cannot have children")
        else:  # element leaf
            if node.children:
                raise ValueError(
                    f"element reference {node.label!r} cannot have children "
                    "inside a content model"
                )


def declared_labels(model: Tree) -> FrozenSet[str]:
    """The paper's ``alphabeta`` applied to a DTD vertex.

    Returns the element tags reachable in the content model *skipping
    operator vertices* — "the direct subelements independently from the
    operators used in the element type declaration" (Section 3).
    Basic types are not element labels and are excluded.

    >>> sorted(declared_labels(seq("b", "c")))
    ['b', 'c']
    """
    labels = set()
    for node in model.iter_preorder():
        if is_element_label(node.label):
            labels.add(node.label)
    return frozenset(labels)


def contains_pcdata(model: Tree) -> bool:
    """True if the model allows text content anywhere."""
    return any(node.label == PCDATA for node in model.iter_preorder())


def is_empty_model(model: Tree) -> bool:
    """True for the ``EMPTY`` content model."""
    return model.label == EMPTY and not model.children


def is_any_model(model: Tree) -> bool:
    """True for the ``ANY`` content model."""
    return model.label == ANY and not model.children


def is_mixed_model(model: Tree) -> bool:
    """True for XML 1.0 mixed content: ``(#PCDATA | a | ...)*`` or ``(#PCDATA)``."""
    if model.label == PCDATA:
        return True
    if model.label != STAR:
        return False
    inner = model.children[0]
    if inner.label == PCDATA:
        return True
    if inner.label != OR or not inner.children:
        return False
    if inner.children[0].label != PCDATA:
        return False
    return all(is_element_label(child.label) for child in inner.children[1:])


# ----------------------------------------------------------------------
# Occurrence analysis
# ----------------------------------------------------------------------


def occurrence_bounds(model: Tree) -> Dict[str, Tuple[int, int]]:
    """Per-label (min, max) occurrence bounds over all words of the model.

    ``max`` is :data:`UNBOUNDED` when a label can repeat without limit.
    The analysis is the standard compositional one:

    - leaf ``x``: ``{x: (1, 1)}``;
    - ``AND``: sums bounds pointwise;
    - ``OR``: min of mins (0 if some branch misses the label), max of maxes;
    - ``?``: min drops to 0;
    - ``*``: min 0, max unbounded (if the label occurs at all);
    - ``+``: min kept, max unbounded.

    Used by the operator-restriction rules to decide, e.g., that a ``*``
    may be tightened to ``+`` only if the observed minimum is >= 1.

    >>> occurrence_bounds(seq("b", star("c")))["c"]
    (0, 1073741824)
    """
    if is_basic_type(model.label):
        return {}
    if is_element_label(model.label):
        return {model.label: (1, 1)}
    if model.label == AND:
        merged: Dict[str, Tuple[int, int]] = {}
        for child in model.children:
            for label, (low, high) in occurrence_bounds(child).items():
                old_low, old_high = merged.get(label, (0, 0))
                merged[label] = (old_low + low, min(UNBOUNDED, old_high + high))
        return merged
    if model.label == OR:
        branch_bounds = [occurrence_bounds(child) for child in model.children]
        labels = set()
        for bounds in branch_bounds:
            labels.update(bounds)
        merged = {}
        for label in labels:
            lows = [bounds.get(label, (0, 0))[0] for bounds in branch_bounds]
            highs = [bounds.get(label, (0, 0))[1] for bounds in branch_bounds]
            merged[label] = (min(lows), max(highs))
        return merged
    inner = occurrence_bounds(model.children[0])
    if model.label == OPT:
        return {label: (0, high) for label, (low, high) in inner.items()}
    if model.label == STAR:
        return {label: (0, UNBOUNDED) for label in inner}
    if model.label == PLUS:
        return {label: (low, UNBOUNDED) for label, (low, _high) in inner.items()}
    raise ValueError(f"unknown content-model label {model.label!r}")


def nullable(model: Tree) -> bool:
    """True if the model accepts the empty child sequence."""
    label = model.label
    if label in (EMPTY, ANY, PCDATA):
        return True
    if is_element_label(label):
        return False
    if label == AND:
        return all(nullable(child) for child in model.children)
    if label == OR:
        return any(nullable(child) for child in model.children)
    if label in (OPT, STAR):
        return True
    if label == PLUS:
        return nullable(model.children[0])
    raise ValueError(f"unknown content-model label {label!r}")


def model_size(model: Tree) -> int:
    """Vertex count — the conciseness measure used by the metrics layer."""
    return model.size()


def iter_leaves(model: Tree) -> Iterable[Tree]:
    """Yield the element-tag leaves of the model, left to right."""
    for node in model.iter_preorder():
        if is_element_label(node.label):
            yield node
