"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parsing problems from semantic ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class XMLSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending position
    when they are known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DTDSyntaxError(ReproError):
    """Raised by the DTD parser on malformed element declarations."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DTDSemanticError(ReproError):
    """Raised for semantically inconsistent DTDs.

    Examples: duplicate element declarations, a root element without a
    declaration, or a content model referencing the reserved ``ANY`` type
    in an invalid position.
    """


class ValidationError(ReproError):
    """Raised when strict validation of a document against a DTD fails."""


class ClassificationError(ReproError):
    """Raised for misuse of the classifier (e.g. an empty DTD set)."""


class EvolutionError(ReproError):
    """Raised when the evolution phase cannot complete.

    The structure-building algorithm is designed to always terminate; this
    error signals a violated internal invariant (a bug or a hand-crafted
    inconsistent extended DTD) rather than an expected runtime condition.
    """


class MiningError(ReproError):
    """Raised for invalid mining parameters (e.g. support out of [0, 1])."""
