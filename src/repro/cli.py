"""``dtdevolve`` — a small command-line front end.

Subcommands::

    dtdevolve classify --dtd schema.dtd doc1.xml doc2.xml ...
        Rank each document against the DTD (similarity + validity).

    dtdevolve evolve --dtd schema.dtd [--tau T --psi P --mu M] docs...
        Record the documents against the DTD, run one evolution, and
        print the evolved DTD.

    dtdevolve infer docs...
        Infer a DTD from scratch (the XTRACT-style baseline).

    dtdevolve run --state state.json [--dtd schema.dtd] [--triggers rules.txt]
                  [--store {memory,jsonl,sqlite}] [--sharded]
                  [--checkpoint-every N]
                  [--workers N] [--no-fastpath] [--report-perf]
                  [--trace out.json] [--trace-jsonl out.jsonl]
                  [--metrics out.prom] docs...
        Drive the full pipeline statefully: load (or initialise) a
        source snapshot, process the documents — classifying, recording
        and auto-evolving — and write the snapshot back.  Prints the
        outcome per document and any evolutions.  ``--store`` picks the
        repository backend, ``--checkpoint-every`` snapshots mid-run,
        ``--workers`` classifies the batch across worker processes
        (identical results, see ``repro.parallel``), ``--no-fastpath``
        forces the reference classification and evolution paths, and
        ``--report-perf`` prints the fast-path hit counters, the
        evolution/drain phase timers (the ``*_ns`` entries, wall-clock
        nanoseconds) and derived hit rates, grouped and sorted.
        ``--trace`` writes a Chrome trace-event JSON of the run
        (``about:tracing`` / Perfetto), ``--trace-jsonl`` the compact
        one-span-per-line stream, ``--metrics`` a Prometheus text
        exposition of counters and span-latency histograms.

    dtdevolve serve --state state.json [--dtd schema.dtd] [--host H --port P]
                    [--store {memory,jsonl,sqlite}] [--sharded]
                    [--queue-limit N] [--max-inflight N] [--reader-threads N]
                    [--checkpoint-every N] [--duration S]
                    [--trace-sample RATE] [--trace-slow-ms MS]
                    [--trace-seed N] [--trace-sink PATH] [--log-json]
        Run the async MVCC service (repro.serve): /classify, /deposit,
        /evolve, /drain, /healthz, /metrics and /debug/{vars,slow,health}
        over JSON.  Readers classify against an immutable snapshot
        version; writes apply serially and publish the next snapshot
        atomically.  Graceful shutdown (SIGINT/SIGTERM, or after
        --duration seconds) drains accepted writes and checkpoints to
        --state.  --trace-sample keeps that fraction of requests as span
        trees (slow/error requests always kept), streamed to the
        --trace-sink rotating JSONL; --log-json switches the process to
        structured log lines carrying each request's X-Request-Id.

    dtdevolve report trace.json [--top N] [--metrics]
        Render the latency tables of a trace dump (either export
        format): per-stage percentiles, the slowest documents, the
        evolution phase breakdown, the worker summary.

    dtdevolve adapt --dtd schema.dtd docs...
        Adapt each document to the DTD (Section 6); writes the adapted
        XML next to the input as ``<name>.adapted.xml`` and prints the
        edit operations.

All input is read from files; DTD output goes to stdout (redirect to
persist).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines.xtract import infer_dtd
from repro.core.evolution import EvolutionConfig, evolve_dtd
from repro.core.extended_dtd import ExtendedDTD
from repro.core.recorder import Recorder
from repro.dtd.automaton import Validator
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.dtd.serializer import serialize_dtd
from repro.similarity.evaluation import evaluate_document
from repro.xmltree.document import Document
from repro.xmltree.parser import parse_document


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_documents(paths: List[str]) -> List[Document]:
    return [parse_document(_read(path)) for path in paths]


def _cmd_classify(args: argparse.Namespace) -> int:
    dtd = parse_dtd(_read(args.dtd))
    validator = Validator(dtd)
    print(f"{'document':<32} {'similarity':>10} {'valid':>6}")
    for path in args.documents:
        document = parse_document(_read(path))
        evaluation = evaluate_document(document, dtd)
        print(
            f"{path:<32} {evaluation.similarity:>10.4f} "
            f"{str(validator.is_valid(document)):>6}"
        )
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    dtd = parse_dtd(_read(args.dtd))
    config = EvolutionConfig(tau=args.tau, psi=args.psi, mu=args.mu)
    extended = ExtendedDTD(dtd)
    recorder = Recorder(extended)
    for document in _load_documents(args.documents):
        recorder.record(document)
    result = evolve_dtd(extended, config)
    for action in result.actions:
        if action.action != "kept":
            window = action.window.value if action.window else "-"
            print(f"-- {action.name}: {action.action} ({window} window)", file=sys.stderr)
    sys.stdout.write(serialize_dtd(result.new_dtd))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    documents = _load_documents(args.documents)
    sys.stdout.write(serialize_dtd(infer_dtd(documents)))
    return 0


def _grouped_perf_report(snapshot) -> dict:
    """``--report-perf``'s stable shape: counters, timers (every
    ``TIMER_NAMES`` entry, zeros included), and derived hit rates —
    each group sorted by key."""
    from repro.perf.counters import TIMER_NAMES

    counters = {
        name: value
        for name, value in sorted(snapshot.items())
        if name not in TIMER_NAMES
    }
    timers = {name: snapshot.get(name, 0) for name in sorted(TIMER_NAMES)}

    def rate(hits: int, total: int) -> float:
        return hits / total if total else 0.0

    derived = {
        "mined_rule_hit_rate": rate(
            snapshot.get("mined_rule_hits", 0),
            snapshot.get("mined_rule_hits", 0)
            + snapshot.get("mined_rule_misses", 0),
        ),
        "structural_cache_hit_rate": rate(
            snapshot.get("structural_cache_hits", 0),
            snapshot.get("structural_cache_hits", 0)
            + snapshot.get("structural_cache_misses", 0),
        ),
        "validity_short_circuit_rate": rate(
            snapshot.get("validity_short_circuits", 0),
            snapshot.get("validations", 0),
        ),
    }
    return {"counters": counters, "timers": timers, "derived": derived}


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.core.persistence import save_source

    source = _load_or_init_source(args)
    if source is None:
        return 2
    if args.log_json:
        from repro.obs.logging import configure_json_logging

        configure_json_logging()
    from repro.obs.live import attach_degradation_monitor

    detach_degradation = attach_degradation_monitor(source.events)
    tracer = None
    if args.trace or args.trace_jsonl or args.metrics:
        from repro.obs.tracing import Tracer

        tracer = Tracer()
    try:
        outcomes = source.process_many(
            [parse_document(_read(path)) for path in args.documents],
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.state,
            workers=args.workers,
            trace=tracer,
        )
    finally:
        # shut the persistent worker pool (and any published snapshot)
        # down even when the batch dies mid-run
        detach_degradation()
        source.close()
    for path, outcome in zip(args.documents, outcomes):
        target = outcome.dtd_name or "<repository>"
        line = f"{path}: {target} (similarity {outcome.similarity:.3f})"
        if outcome.evolved:
            line += f"  ** evolved: {', '.join(outcome.evolved)}"
        print(line)
    for name in source.dtd_names():
        sys.stdout.write(serialize_dtd(source.dtd(name)))
    save_source(source, args.state)
    print(f"state saved to {args.state}", file=sys.stderr)
    if tracer is not None:
        if args.trace:
            tracer.write_chrome(args.trace)
            print(
                f"trace {tracer.trace_id} ({len(tracer.spans)} spans) "
                f"written to {args.trace}",
                file=sys.stderr,
            )
        if args.trace_jsonl:
            tracer.write_jsonl(args.trace_jsonl)
            print(f"span stream written to {args.trace_jsonl}", file=sys.stderr)
        if args.metrics:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.update_from_perf(source.perf_snapshot())
            registry.observe_spans(tracer.spans)
            registry.gauge(
                "repro_event_dead_letters",
                "Subscriber exceptions swallowed by the event bus",
            ).set(source.events.dead_letters)
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(registry.expose())
            print(f"metrics written to {args.metrics}", file=sys.stderr)
    if args.report_perf:
        print(json.dumps(_grouped_perf_report(source.perf_snapshot()), indent=1))
    return 0


def _load_or_init_source(args: argparse.Namespace):
    """The shared ``run``/``serve`` bootstrap: load the state snapshot
    if it exists, otherwise initialise a fresh source from ``--dtd``.
    Returns ``None`` (after printing the error) when neither is
    possible."""
    import os

    from repro.core.engine import XMLSource
    from repro.core.persistence import load_source
    from repro.perf import FastPathConfig
    from repro.triggers.trigger import TriggerSet

    triggers = None
    if getattr(args, "triggers", None):
        triggers = TriggerSet.parse(_read(args.triggers))
    fastpath = (
        FastPathConfig.disabled() if getattr(args, "no_fastpath", False) else None
    )
    if os.path.exists(args.state):
        return load_source(
            args.state,
            triggers=triggers,
            fastpath=fastpath,
            store=args.store,
            sharded=args.sharded,
        )
    if not args.dtd:
        print(
            "error: --dtd is required when the state file does not exist",
            file=sys.stderr,
        )
        return None
    config = EvolutionConfig(
        sigma=args.sigma, tau=args.tau, psi=args.psi, mu=args.mu,
        min_documents=args.min_documents,
    )
    return XMLSource(
        [parse_dtd(_read(args.dtd))],
        config,
        triggers=triggers,
        fastpath=fastpath,
        store=args.store,
        sharded=bool(args.sharded),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.core.persistence import save_source
    from repro.serve import ServeConfig, serve_forever

    # the service announces the *bound* port (essential with --port 0)
    # and surfaced store warnings on its logger — give it a stderr
    # handler unless the embedding application configured one already
    if args.log_json:
        # one JSON formatter on the root "repro" logger: serve,
        # parallel-degradation warnings, and obs all correlate by
        # request_id through the same handler
        from repro.obs.logging import configure_json_logging

        configure_json_logging()
    serve_logger = logging.getLogger("repro.serve")
    if not serve_logger.handlers and not logging.getLogger("repro").handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(message)s"))
        serve_logger.addHandler(handler)
        serve_logger.setLevel(logging.INFO)

    source = _load_or_init_source(args)
    if source is None:
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        max_inflight=args.max_inflight,
        reader_threads=args.reader_threads,
        checkpoint_path=args.state,
        checkpoint_every=args.checkpoint_every,
        trace_sample=args.trace_sample,
        trace_slow_ms=args.trace_slow_ms,
        trace_seed=args.trace_seed,
        trace_sink=args.trace_sink,
    )
    print(
        f"serving {', '.join(source.dtd_names())} "
        f"(queue limit {config.queue_limit}, "
        f"checkpointing to {args.state})",
        file=sys.stderr,
    )
    try:
        service = serve_forever(source, config, duration=args.duration)
    finally:
        source.close()
    for caught in service.store_warnings:
        print(f"store warning: {caught.message}", file=sys.stderr)
    save_source(source, args.state)
    print(
        f"served {service.applied_writes} writes, "
        f"{service.checkpoints} checkpoints; state saved to {args.state}",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.export import load_trace
    from repro.obs.report import render_report

    try:
        trace_id, records = load_trace(args.trace)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_report(records, trace_id=trace_id, top=args.top))
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.observe_spans(records)
        print()
        sys.stdout.write(registry.expose())
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.core.adaptation import DocumentAdapter
    from repro.xmltree.serializer import serialize_document

    adapter = DocumentAdapter(parse_dtd(_read(args.dtd)))
    for path in args.documents:
        report = adapter.adapt(parse_document(_read(path)))
        output_path = path.rsplit(".", 1)[0] + ".adapted.xml"
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(serialize_document(report.document, indent="  "))
        summary = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.by_kind().items())
        )
        print(f"{path} -> {output_path} ({summary or 'unchanged'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dtdevolve",
        description="Evolve a DTD according to a set of XML documents "
        "(Bertino et al., EDBT 2002 Workshops).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify = commands.add_parser("classify", help="rank documents against a DTD")
    classify.add_argument("--dtd", required=True, help="path to the DTD file")
    classify.add_argument("documents", nargs="+", help="XML document files")
    classify.set_defaults(handler=_cmd_classify)

    evolve = commands.add_parser("evolve", help="record documents and evolve the DTD")
    evolve.add_argument("--dtd", required=True, help="path to the DTD file")
    evolve.add_argument("--tau", type=float, default=0.1, help="activation threshold")
    evolve.add_argument("--psi", type=float, default=0.2, help="window threshold")
    evolve.add_argument("--mu", type=float, default=0.0, help="sequence min support")
    evolve.add_argument("documents", nargs="+", help="XML document files")
    evolve.set_defaults(handler=_cmd_evolve)

    infer = commands.add_parser("infer", help="infer a DTD from scratch (baseline)")
    infer.add_argument("documents", nargs="+", help="XML document files")
    infer.set_defaults(handler=_cmd_infer)

    run = commands.add_parser(
        "run", help="stateful pipeline: classify, record, auto-evolve"
    )
    run.add_argument("--state", required=True, help="snapshot file (created if absent)")
    run.add_argument("--dtd", help="initial DTD (required for a fresh state)")
    run.add_argument("--triggers", help="trigger rule file (one rule per line)")
    run.add_argument("--sigma", type=float, default=0.5)
    run.add_argument("--tau", type=float, default=0.1)
    run.add_argument("--psi", type=float, default=0.2)
    run.add_argument("--mu", type=float, default=0.0)
    run.add_argument("--min-documents", type=int, default=10, dest="min_documents")
    run.add_argument(
        "--store",
        choices=["memory", "jsonl", "sqlite"],
        default=None,
        help="repository backend (default: what the snapshot used, or "
        "memory); sqlite keeps an inverted tag index so post-evolution "
        "drains query instead of scan",
    )
    run.add_argument(
        "--sharded",
        action="store_true",
        default=None,
        help="classify against tag-vocabulary DTD shards (exact "
        "fallback keeps results identical; default: what the snapshot "
        "used, or unsharded)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        dest="checkpoint_every",
        metavar="N",
        help="snapshot the state file after every N documents (0 = only at the end)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="classify the batch across N worker processes "
        "(0/1 = serial; results are identical either way)",
    )
    run.add_argument(
        "--no-fastpath",
        action="store_true",
        dest="no_fastpath",
        help="disable the exact classification fast paths (reference code path)",
    )
    run.add_argument(
        "--report-perf",
        action="store_true",
        dest="report_perf",
        help="print the fast-path hit counters, phase timers and derived "
        "rates (grouped, sorted) after the run",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event JSON of the run "
        "(load in about:tracing or Perfetto)",
    )
    run.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        dest="trace_jsonl",
        help="write the compact one-span-per-line trace stream",
    )
    run.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a Prometheus text exposition (perf counters, span "
        "latency histograms, dead-letter count)",
    )
    run.add_argument(
        "--log-json",
        action="store_true",
        dest="log_json",
        help="emit structured JSON log lines (one object per line) on stderr",
    )
    run.add_argument("documents", nargs="+", help="XML document files")
    run.set_defaults(handler=_cmd_run)

    serve = commands.add_parser(
        "serve",
        help="run the async MVCC service (classify/deposit/evolve/drain over JSON)",
    )
    serve.add_argument("--state", required=True, help="snapshot file (created if absent)")
    serve.add_argument("--dtd", help="initial DTD (required for a fresh state)")
    serve.add_argument("--triggers", help="trigger rule file (one rule per line)")
    serve.add_argument("--sigma", type=float, default=0.5)
    serve.add_argument("--tau", type=float, default=0.1)
    serve.add_argument("--psi", type=float, default=0.2)
    serve.add_argument("--mu", type=float, default=0.0)
    serve.add_argument("--min-documents", type=int, default=10, dest="min_documents")
    serve.add_argument(
        "--store", choices=["memory", "jsonl", "sqlite"], default=None,
        help="repository backend (default: what the snapshot used, or memory)",
    )
    serve.add_argument(
        "--sharded", action="store_true", default=None,
        help="classify against tag-vocabulary DTD shards",
    )
    serve.add_argument(
        "--no-fastpath", action="store_true", dest="no_fastpath",
        help="disable the exact classification fast paths",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 = ephemeral; default 8750)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64, dest="queue_limit", metavar="N",
        help="max queued write ops before 429 backpressure (default 64)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, dest="max_inflight", metavar="N",
        help="max concurrently admitted requests (default 64)",
    )
    serve.add_argument(
        "--reader-threads", type=int, default=4, dest="reader_threads", metavar="N",
        help="reader pool size for /classify (default 4)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, dest="checkpoint_every", metavar="N",
        help="checkpoint the state file after every N deposits "
        "(0 = only at shutdown)",
    )
    serve.add_argument(
        "--duration", type=float, default=0.0, metavar="S",
        help="serve for S seconds then shut down gracefully (0 = until signalled)",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=0.0, dest="trace_sample",
        metavar="RATE",
        help="head-sampling rate in [0,1] for always-on request tracing "
        "(slow/error requests are kept regardless; default 0.0)",
    )
    serve.add_argument(
        "--trace-slow-ms", type=float, default=250.0, dest="trace_slow_ms",
        metavar="MS",
        help="tail-keep threshold: requests at/above MS milliseconds are "
        "always sampled (default 250)",
    )
    serve.add_argument(
        "--trace-seed", type=int, default=0, dest="trace_seed",
        help="seed of the deterministic head-sampling hash (default 0)",
    )
    serve.add_argument(
        "--trace-sink", dest="trace_sink", metavar="PATH",
        help="rotating JSONL file kept span trees stream to "
        "(readable with 'dtdevolve report PATH')",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        dest="log_json",
        help="emit structured JSON log lines with request_id correlation "
        "on stderr",
    )
    serve.set_defaults(handler=_cmd_serve)

    report = commands.add_parser(
        "report", help="latency tables from a trace dump (either format)"
    )
    report.add_argument("trace", help="trace file (--trace or --trace-jsonl output)")
    report.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many slowest documents to list (default 5)",
    )
    report.add_argument(
        "--metrics",
        action="store_true",
        help="also print span-latency histograms as Prometheus text",
    )
    report.set_defaults(handler=_cmd_report)

    adapt = commands.add_parser(
        "adapt", help="adapt documents to a DTD (writes *.adapted.xml)"
    )
    adapt.add_argument("--dtd", required=True, help="path to the DTD file")
    adapt.add_argument("documents", nargs="+", help="XML document files")
    adapt.set_defaults(handler=_cmd_adapt)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
