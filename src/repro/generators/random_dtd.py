"""Seeded random DTD generation.

Generates structurally diverse but well-formed, *acyclic* and
*deterministic* DTDs: element ``i`` may only reference elements with a
larger index, so expansion always terminates and every label occurs at
most once per content model (which keeps the Glushkov automaton
1-unambiguous and the restriction rules applicable).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD, ElementDecl
from repro.xmltree.tree import Tree


class RandomDTDGenerator:
    """Random DTD factory.

    Parameters
    ----------
    seed:
        RNG seed; equal seeds give equal DTDs.
    element_count:
        Declarations to generate (named ``e0 .. eN-1``; ``e0`` is root).
    max_fanout:
        Maximum distinct child labels per content model.
    operator_rate:
        Probability that a child position gets a ``?``/``*``/``+``
        wrapper, and that a group of children is bound by OR instead of
        the default AND.
    leaf_rate:
        Probability that a non-root element is a ``#PCDATA`` leaf
        (forced True when it has no candidate children left).
    """

    def __init__(
        self,
        seed: int = 0,
        element_count: int = 8,
        max_fanout: int = 4,
        operator_rate: float = 0.3,
        leaf_rate: float = 0.35,
        name: str = "random",
    ):
        self.seed = seed
        self.element_count = max(1, element_count)
        self.max_fanout = max(1, max_fanout)
        self.operator_rate = operator_rate
        self.leaf_rate = leaf_rate
        self.name = name

    def generate(self) -> DTD:
        """Produce one DTD (deterministic for a given generator state)."""
        rng = random.Random(self.seed)
        names = [f"e{i}" for i in range(self.element_count)]
        dtd = DTD(name=self.name)
        for index, element_name in enumerate(names):
            candidates = names[index + 1 :]
            is_leaf = not candidates or (index > 0 and rng.random() < self.leaf_rate)
            if is_leaf:
                dtd.add(ElementDecl(element_name, cm.pcdata()))
                continue
            fanout = rng.randint(1, min(self.max_fanout, len(candidates)))
            children = rng.sample(candidates, fanout)
            dtd.add(ElementDecl(element_name, self._model(children, rng)))
        dtd.root = names[0]
        return dtd

    def _model(self, children: Sequence[str], rng: random.Random) -> Tree:
        particles: List[Tree] = []
        for child in children:
            particle: Tree = Tree.leaf(child)
            if rng.random() < self.operator_rate:
                operator = rng.choice([cm.OPT, cm.STAR, cm.PLUS])
                particle = Tree(operator, [particle])
            particles.append(particle)
        if len(particles) == 1:
            return particles[0]
        if rng.random() < self.operator_rate:
            choice_tree = Tree(cm.OR, [self._strip(p) for p in particles])
            if rng.random() < self.operator_rate:
                return Tree(rng.choice([cm.STAR, cm.PLUS]), [choice_tree])
            return choice_tree
        return Tree(cm.AND, particles)

    @staticmethod
    def _strip(particle: Tree) -> Tree:
        """OR alternatives stay plain leaves (keeps models deterministic)."""
        return particle.children[0] if particle.label in cm.UNARY_OPERATORS else particle

    def generate_many(self, count: int) -> List[DTD]:
        """A family of distinct DTDs (seeds ``seed .. seed+count-1``)."""
        dtds = []
        for offset in range(count):
            generator = RandomDTDGenerator(
                self.seed + offset,
                self.element_count,
                self.max_fanout,
                self.operator_rate,
                self.leaf_rate,
                name=f"{self.name}{offset}",
            )
            dtds.append(generator.generate())
        return dtds
