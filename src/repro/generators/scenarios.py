"""Canned workloads: the paper's figures plus realistic sources.

Three groups:

1. **Paper artefacts** — the exact document/DTD of Figure 2 and the
   D1/D2 document families of Figure 3 (also Examples 1, 2 and 5);
   these drive the exact-reproduction experiments E1–E3.
2. **Realistic sources** — catalog, bibliography and news-feed schemas
   with domain-plausible tags, used by the examples and the synthetic
   evaluation benchmarks.
3. Each scenario returns ``(dtd, make_documents)`` where
   ``make_documents(count, seed)`` yields a reproducible stream.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.dtd.dtd import DTD
from repro.dtd.parser import parse_dtd
from repro.generators.documents import DocumentGenerator
from repro.xmltree.document import Document
from repro.xmltree.parser import parse_document

Scenario = Tuple[DTD, Callable[[int, int], List[Document]]]


# ----------------------------------------------------------------------
# Paper artefacts
# ----------------------------------------------------------------------


def figure2_dtd() -> DTD:
    """The DTD of Figure 2(c)."""
    return parse_dtd(
        """
        <!ELEMENT a (b, c)>
        <!ELEMENT b (#PCDATA)>
        <!ELEMENT c (d)>
        <!ELEMENT d (#PCDATA)>
        """,
        name="figure2",
    )


def figure2_document() -> Document:
    """The document of Figure 2(a): ``<a><b>5</b><c>7</c></a>``."""
    return parse_document("<a><b>5</b><c>7</c></a>")


def figure3_dtd() -> DTD:
    """The (pre-evolution) DTD of Figure 3(a): ``a`` expects ``(b, c)``."""
    return parse_dtd(
        """
        <!ELEMENT a (b, c)>
        <!ELEMENT b (#PCDATA)>
        <!ELEMENT c (#PCDATA)>
        """,
        name="figure3",
    )


def figure3_workload(
    count_d1: int = 10, count_d2: int = 10, seed: int = 0
) -> List[Document]:
    """The D1/D2 document families of Figure 3(b).

    D1 documents contain a sequence of ``(b, c)`` pairs followed by a
    sequence of ``d`` elements; D2 documents contain the same pair
    sequence followed by a single ``e``.  Pair and ``d`` counts vary per
    document (that is what makes ``{b, c}`` a co-repetition group and
    ``d`` "repeatable and optional" in Example 2).
    """
    rng = random.Random(seed)
    documents: List[Document] = []
    for _ in range(count_d1):
        pairs = rng.randint(1, 4)
        tails = rng.randint(1, 3)
        body = "".join("<b>x</b><c>y</c>" for _ in range(pairs))
        body += "".join("<d>z</d>" for _ in range(tails))
        documents.append(parse_document(f"<a>{body}</a>"))
    for _ in range(count_d2):
        pairs = rng.randint(1, 4)
        body = "".join("<b>x</b><c>y</c>" for _ in range(pairs)) + "<e>w</e>"
        documents.append(parse_document(f"<a>{body}</a>"))
    rng.shuffle(documents)
    return documents


# ----------------------------------------------------------------------
# Realistic sources
# ----------------------------------------------------------------------

_CATALOG_DTD = """
<!ELEMENT catalog (vendor, product+)>
<!ELEMENT vendor (name, url?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT url (#PCDATA)>
<!ELEMENT product (name, price, description?, stock)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT stock (#PCDATA)>
"""

_BIBLIOGRAPHY_DTD = """
<!ELEMENT bibliography (entry+)>
<!ELEMENT entry (title, author+, year, (journal | booktitle))>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
"""

_NEWSFEED_DTD = """
<!ELEMENT feed (channel, item*)>
<!ELEMENT channel (title, language?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT language (#PCDATA)>
<!ELEMENT item (title, body, tag*)>
<!ELEMENT body (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
"""


def _scenario(source: str, name: str) -> Scenario:
    dtd = parse_dtd(source, name=name)

    def make_documents(count: int, seed: int = 0) -> List[Document]:
        return DocumentGenerator(dtd, seed=seed).generate_many(count)

    return dtd, make_documents


def catalog_scenario() -> Scenario:
    """An e-commerce catalog source (vendor + products)."""
    return _scenario(_CATALOG_DTD, "catalog")


def bibliography_scenario() -> Scenario:
    """A bibliography source (entries with authors and venues)."""
    return _scenario(_BIBLIOGRAPHY_DTD, "bibliography")


def newsfeed_scenario() -> Scenario:
    """A news-feed source (channel metadata + items)."""
    return _scenario(_NEWSFEED_DTD, "newsfeed")


_AUCTION_DTD = """
<!ELEMENT site (region+, people, auctions)>
<!ELEMENT region (name, item*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT item (name, description?, reserve?, seller)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT seller (#PCDATA)>
<!ELEMENT people (person+)>
<!ELEMENT person (name, email?, watch*)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT watch (#PCDATA)>
<!ELEMENT auctions (auction*)>
<!ELEMENT auction (item, bid*)>
<!ELEMENT bid (bidder, amount)>
<!ELEMENT bidder (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
"""


def auction_scenario() -> Scenario:
    """An XMark-style auction-site source.

    A simplified rendition of the standard XMark benchmark schema
    (regions holding items, people, open auctions with bids) — the
    deepest and widest of the canned scenarios, used by the
    longitudinal experiment E12.
    """
    return _scenario(_AUCTION_DTD, "auction")
