"""Document sampling and structural drift.

:class:`DocumentGenerator` samples *valid* documents from a DTD by
walking content models (choices uniform, repetitions geometric).  The
:class:`Drift` hierarchy then perturbs valid documents to produce
exactly the divergences of Section 2:

- :class:`DropDrift`    — "some documents miss some elements specified
  in the DTD";
- :class:`AddDrift`     — "some documents contain some new elements,
  not defined in the DTD";
- :class:`OperatorDrift`— "elements in the document and in the DTD
  match, but the underlying structures do not, that is, the constraints
  defined by operators in the DTD are not met";
- :class:`RenameDrift`  — tag renaming (exercises the Section 6
  thesaurus extension);
- :class:`CompositeDrift` — several drifts in sequence.

All randomness flows from explicit seeds; a generator re-created with
the same arguments emits the same stream.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD
from repro.xmltree.document import Document, Element, Text
from repro.xmltree.tree import Tree

_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel")


class DocumentGenerator:
    """Samples valid documents from a DTD.

    Parameters
    ----------
    dtd:
        The schema to sample from.
    seed:
        RNG seed.
    repeat_p:
        Parameter of the geometric law for ``*``/``+`` repetition
        counts (expected extra repetitions = ``repeat_p/(1-repeat_p)``).
    optional_p:
        Probability that a ``?``/``*`` part is instantiated at all.
    max_depth:
        Recursion guard for cyclic DTDs: beyond it, optional parts are
        skipped and recursive elements rendered empty.
    """

    def __init__(
        self,
        dtd: DTD,
        seed: int = 0,
        repeat_p: float = 0.45,
        optional_p: float = 0.6,
        max_depth: int = 24,
    ):
        self.dtd = dtd
        self.rng = random.Random(seed)
        self.repeat_p = repeat_p
        self.optional_p = optional_p
        self.max_depth = max_depth

    # ------------------------------------------------------------------

    def generate(self, root: Optional[str] = None) -> Document:
        """One fresh valid document."""
        root_name = root if root is not None else self.dtd.root
        return Document(self._element(root_name, 0), doctype_name=root_name)

    def generate_many(self, count: int, root: Optional[str] = None) -> List[Document]:
        return [self.generate(root) for _ in range(count)]

    def stream(self, root: Optional[str] = None) -> Iterator[Document]:
        """An endless stream of valid documents."""
        while True:
            yield self.generate(root)

    # ------------------------------------------------------------------

    def _element(self, tag: str, depth: int) -> Element:
        element = Element(tag)
        decl = self.dtd.get(tag)
        if decl is None or decl.is_empty or depth > self.max_depth:
            return element
        if decl.is_any:
            element.children.append(Text(self._word()))
            return element
        self._instantiate(decl.content, element, depth)
        return element

    def _instantiate(self, model: Tree, parent: Element, depth: int) -> None:
        label = model.label
        if label == cm.PCDATA:
            parent.children.append(Text(self._word()))
            return
        if label in (cm.EMPTY, cm.ANY):
            return
        if cm.is_element_label(label):
            parent.children.append(self._element(label, depth + 1))
            return
        if label == cm.AND:
            for child in model.children:
                self._instantiate(child, parent, depth)
            return
        if label == cm.OR:
            chosen = self.rng.choice(model.children)
            self._instantiate(chosen, parent, depth)
            return
        if label == cm.OPT:
            if depth <= self.max_depth and self.rng.random() < self.optional_p:
                self._instantiate(model.children[0], parent, depth)
            return
        if label in (cm.STAR, cm.PLUS):
            count = 1 if label == cm.PLUS else 0
            if label == cm.STAR and (
                depth > self.max_depth or self.rng.random() >= self.optional_p
            ):
                count = 0
            else:
                count = max(count, 1)
                while depth <= self.max_depth and self.rng.random() < self.repeat_p:
                    count += 1
            for _ in range(count):
                self._instantiate(model.children[0], parent, depth)
            return
        raise ValueError(f"unknown content-model label {label!r}")

    def _word(self) -> str:
        return self.rng.choice(_WORDS)


# ----------------------------------------------------------------------
# Drift
# ----------------------------------------------------------------------


class Drift:
    """A structural perturbation of valid documents.

    Subclasses override :meth:`_mutate_element`; :meth:`apply` walks a
    *copy* of the document and mutates element-by-element, so one drift
    object can perturb many documents reproducibly (it owns its RNG).
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drift rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = random.Random(seed)

    def apply(self, document: Document) -> Document:
        mutated = document.copy()
        for element in list(mutated.root.iter_elements()):
            if self.rng.random() < self.rate:
                self._mutate_element(element)
        return mutated

    def apply_many(self, documents: Sequence[Document]) -> List[Document]:
        return [self.apply(document) for document in documents]

    def _mutate_element(self, element: Element) -> None:
        raise NotImplementedError


class DropDrift(Drift):
    """Remove one (random) direct subelement — the *missing elements*
    regularity."""

    def _mutate_element(self, element: Element) -> None:
        elements = element.element_children()
        if not elements:
            return
        victim = self.rng.choice(elements)
        element.children.remove(victim)


class AddDrift(Drift):
    """Insert elements with tags the DTD does not declare — the *new
    elements* regularity.

    ``new_tags`` is the pool of foreign tags; each insertion picks one
    and gives it text content (plus, optionally, a nested foreign child
    to exercise recursive plus-element inference).
    """

    def __init__(
        self,
        rate: float,
        new_tags: Sequence[str] = ("extra", "note", "annotation"),
        seed: int = 0,
        nested_rate: float = 0.2,
        at_end: bool = True,
    ):
        super().__init__(rate, seed)
        self.new_tags = list(new_tags)
        self.nested_rate = nested_rate
        self.at_end = at_end

    def _mutate_element(self, element: Element) -> None:
        tag = self.rng.choice(self.new_tags)
        newcomer = Element(tag, children=[Text("extra")])
        if self.rng.random() < self.nested_rate:
            newcomer.children = [Element(f"{tag}_part", children=[Text("deep")])]
        if self.at_end or not element.children:
            element.children.append(newcomer)
        else:
            position = self.rng.randrange(len(element.children) + 1)
            element.children.insert(position, newcomer)


class OperatorDrift(Drift):
    """Violate operator constraints without changing the tag vocabulary
    — the *operators not met* regularity: duplicate a child (breaks
    ``?``/plain positions) or swap two children (breaks AND order)."""

    def _mutate_element(self, element: Element) -> None:
        elements = element.element_children()
        if not elements:
            return
        if len(elements) >= 2 and self.rng.random() < 0.5:
            first, second = self.rng.sample(range(len(element.children)), 2)
            element.children[first], element.children[second] = (
                element.children[second],
                element.children[first],
            )
        else:
            victim = self.rng.choice(elements)
            element.children.append(victim.copy())


class RenameDrift(Drift):
    """Rename tags per a mapping (Section 6 thesaurus extension)."""

    def __init__(self, rate: float, renames: Dict[str, str], seed: int = 0):
        super().__init__(rate, seed)
        self.renames = dict(renames)

    def _mutate_element(self, element: Element) -> None:
        if element.tag in self.renames:
            element.tag = self.renames[element.tag]


class CompositeDrift(Drift):
    """Apply several drifts in sequence."""

    def __init__(self, drifts: Sequence[Drift]):
        super().__init__(0.0, 0)
        self.drifts = list(drifts)

    def apply(self, document: Document) -> Document:
        for drift in self.drifts:
            document = drift.apply(document)
        return document

    def _mutate_element(self, element: Element) -> None:  # pragma: no cover
        raise AssertionError("CompositeDrift delegates to its parts")
