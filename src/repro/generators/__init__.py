"""Synthetic workload generation.

The paper evaluated on documents "gathered from the Web or created as
local data"; this offline reproduction substitutes controlled synthetic
workloads that exercise exactly the three regularity classes of
Section 2:

1. documents *missing* elements the DTD requires;
2. documents with *new* elements the DTD does not declare;
3. documents whose elements match but whose *operators* are violated.

- :mod:`repro.generators.random_dtd` — seeded random DTDs;
- :mod:`repro.generators.documents` — valid-document sampling from a
  DTD plus composable structural *drifts* implementing the three
  classes;
- :mod:`repro.generators.scenarios` — canned workloads: the paper's
  figures, plus realistic catalog / bibliography / news-feed sources
  used by the examples and benchmarks.
"""

from repro.generators.random_dtd import RandomDTDGenerator
from repro.generators.documents import (
    DocumentGenerator,
    Drift,
    DropDrift,
    AddDrift,
    OperatorDrift,
    RenameDrift,
    CompositeDrift,
)
from repro.generators.scenarios import (
    auction_scenario,
    figure2_dtd,
    figure2_document,
    figure3_workload,
    catalog_scenario,
    bibliography_scenario,
    newsfeed_scenario,
)

__all__ = [
    "RandomDTDGenerator",
    "DocumentGenerator",
    "Drift",
    "DropDrift",
    "AddDrift",
    "OperatorDrift",
    "RenameDrift",
    "CompositeDrift",
    "figure2_dtd",
    "figure2_document",
    "figure3_workload",
    "auction_scenario",
    "catalog_scenario",
    "bibliography_scenario",
    "newsfeed_scenario",
]
