"""Persistent worker pools for parallel classification.

The original driver owned a ``ProcessPoolExecutor`` per batch: every
``process_many`` call paid the full pool spin-up (fork + interpreter
bootstrap per worker) and threw the warm workers away afterwards,
together with their per-epoch classifier caches.  A :class:`WorkerPool`
instead lives on the engine — one per worker count, created lazily and
reused across batches — so the spin-up cost amortises over the
engine's lifetime and the fingerprint-keyed snapshot caches inside the
workers stay warm between ``process_many`` calls.

Lifecycle:

- ``pool.submit(fn, *args)`` lazily creates the executor on first use
  (counted in :attr:`~repro.perf.PerfCounters.pool_spinups`);
- ``pool.retire()`` discards a broken executor but keeps the pool — the
  next submit respins a fresh one (the driver calls this when a worker
  dies and the executor reports ``BrokenExecutor``);
- ``pool.close()`` shuts the executor down for good (idempotent; the
  pool respins if submitted to again).

Engines expose the lifecycle as ``XMLSource.close()`` and the context
manager protocol.  As a last resort every live pool (and any other
closable parallel resource registered via :func:`register_for_atexit`)
is shut down by an ``atexit`` hook, so persistent pools never silently
outlive the process that forgot to close them.
"""

from __future__ import annotations

import atexit
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Optional

__all__ = ["WorkerPool", "register_for_atexit"]

#: every closable parallel resource still alive (weak — a resource only
#: reachable from here is left to normal garbage collection)
_LIVE_RESOURCES: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_INSTALLED = False


def _close_live_resources() -> None:
    for resource in list(_LIVE_RESOURCES):
        try:
            resource.close()
        except Exception:  # pragma: no cover - best-effort shutdown
            pass


def register_for_atexit(resource: object) -> None:
    """Track ``resource`` (anything with ``close()``) for the process
    exit sweep.  The hook is installed on first registration only."""
    global _ATEXIT_INSTALLED
    _LIVE_RESOURCES.add(resource)
    if not _ATEXIT_INSTALLED:
        atexit.register(_close_live_resources)
        _ATEXIT_INSTALLED = True


class WorkerPool:
    """A lazily spun, rebuildable, engine-lifetime process pool.

    ``generation`` counts executors created so far: 1 after the first
    spin-up, +1 after every :meth:`retire`/respin cycle.  The driver
    stamps it onto spliced worker spans so a trace shows whether a
    batch reused the pool or had to rebuild it.
    """

    def __init__(self, workers: int, counters=None):
        if workers < 2:
            raise ValueError(f"WorkerPool needs workers >= 2, got {workers}")
        self.workers = workers
        self.counters = counters
        self.generation = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        register_for_atexit(self)

    # ------------------------------------------------------------------

    @property
    def live(self) -> bool:
        """Whether an executor is currently spun up."""
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            self.generation += 1
            if self.counters is not None:
                self.counters.pool_spinups += 1
        return self._executor

    def submit(self, fn: Callable, *args) -> Future:
        """Submit a task, spinning the executor up if needed."""
        return self._ensure().submit(fn, *args)

    def lease(self) -> None:
        """Mark the start of one batch: counts a pool reuse when a live
        executor is already waiting (the persistent-pool win)."""
        if self._executor is not None and self.counters is not None:
            self.counters.pool_reuses += 1

    def retire(self) -> None:
        """Discard the (presumed broken) executor; the pool itself
        survives and respins on the next submit."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the executor down for good (idempotent)."""
        self.retire()

    def __repr__(self) -> str:
        state = "live" if self.live else "idle"
        return (
            f"WorkerPool(workers={self.workers}, "
            f"generation={self.generation}, {state})"
        )
