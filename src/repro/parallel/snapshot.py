"""The picklable wire format between the driver and its workers.

Three shapes cross the process boundary:

- :class:`ClassifierSnapshot` — the frozen classification state of one
  epoch (DTD set, ``sigma``, similarity and fast-path configuration),
  pickled once per epoch and shipped with every chunk so workers can
  rebuild lazily and cache per epoch;
- :class:`DocumentPayload` — one document's classification result as
  plain tuples: the decision, the eagerly-scored ranking head, the
  names tier-3 pruning skipped (laziness is *preserved* across the
  boundary — the parent rebuilds the deferred tail against its own
  matchers), and the evaluation triples for accepted documents;
- :class:`ChunkResult` — a shard's payloads plus the worker's
  cumulative counter snapshot, keyed for duplicate-safe merging.

:func:`payload_from` and :func:`rebuild_classification` are exact
inverses up to object identity: the rebuilt
:class:`~repro.classification.classifier.ClassificationResult` is bound
to the parent's document and DTD objects, with float-identical
similarities and triples (pickle round-trips floats bit-exactly).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.classification.classifier import ClassificationResult, Classifier
from repro.dtd.dtd import DTD
from repro.perf import FastPathConfig, PerfCounters
from repro.similarity.evaluation import DocumentEvaluation, ElementEvaluation
from repro.similarity.triple import EvalTriple, SimilarityConfig
from repro.xmltree.document import Document

#: (plus, minus, common)
TripleTuple = Tuple[float, float, float]
#: (declared, local triple, global triple) per element, preorder
ElementTuple = Tuple[bool, TripleTuple, TripleTuple]


class ClassifierSnapshot:
    """Immutable, picklable classification state for one epoch."""

    __slots__ = ("dtds", "threshold", "config", "fastpath", "traced")

    def __init__(
        self,
        dtds: Iterable[DTD],
        threshold: float,
        config: SimilarityConfig,
        fastpath: FastPathConfig,
        traced: bool = False,
    ):
        self.dtds: Tuple[DTD, ...] = tuple(dtds)
        self.threshold = threshold
        self.config = config
        self.fastpath = fastpath
        #: whether the parent wants per-document worker spans back
        self.traced = traced

    @classmethod
    def of(cls, source: "XMLSource") -> "ClassifierSnapshot":
        """Freeze ``source``'s current classification state.

        Only exact tag matching is parallel-safe (a thesaurus matcher
        is stateful and unpicklable in general); the driver degrades to
        serial before ever snapshotting such a source.
        """
        return cls(
            (source.classifier.dtd(name) for name in source.dtd_names()),
            source.classifier.threshold,
            source.similarity_config,
            source.fastpath,
            traced=source.tracer.enabled,
        )

    def build_classifier(self, counters: Optional[PerfCounters] = None) -> Classifier:
        """Reconstruct a classifier (worker side, once per epoch)."""
        return Classifier(
            self.dtds,
            self.threshold,
            self.config,
            tag_matcher=None,
            fastpath=self.fastpath,
            counters=counters,
        )

    def __repr__(self) -> str:
        names = [dtd.name for dtd in self.dtds]
        return f"ClassifierSnapshot(dtds={names!r}, sigma={self.threshold})"


class DocumentPayload:
    """One classification result, flattened to picklable primitives."""

    __slots__ = ("dtd_name", "similarity", "evaluated", "pruned",
                 "document_triple", "elements", "spans")

    def __init__(
        self,
        dtd_name: Optional[str],
        similarity: float,
        evaluated: Tuple[Tuple[str, float], ...],
        pruned: Tuple[str, ...],
        document_triple: Optional[TripleTuple],
        elements: Optional[Tuple[ElementTuple, ...]],
        spans: Optional[Tuple] = None,
    ):
        self.dtd_name = dtd_name
        self.similarity = similarity
        self.evaluated = evaluated
        self.pruned = pruned
        self.document_triple = document_triple
        self.elements = elements
        #: worker-side span records for this document (traced epochs
        #: only) — tuples from
        #: :meth:`repro.obs.tracing.SpanCollector.take_records`
        self.spans = spans

    def __repr__(self) -> str:
        target = self.dtd_name or "<repository>"
        return f"DocumentPayload({target!r}, {self.similarity:.3f})"


class ChunkResult:
    """What one worker task returns for one chunk of documents."""

    __slots__ = ("worker_key", "counters", "payloads")

    def __init__(
        self,
        worker_key: str,
        counters: Dict[str, int],
        payloads: List[DocumentPayload],
    ):
        #: stable per-process identity — the duplicate-safe merge key
        self.worker_key = worker_key
        #: the worker's *cumulative* counter snapshot (monotone per key)
        self.counters = counters
        self.payloads = payloads

    def __repr__(self) -> str:
        return f"ChunkResult({self.worker_key!r}, {len(self.payloads)} payloads)"


def payload_from(result: ClassificationResult) -> DocumentPayload:
    """Flatten a classification result without realizing lazy work.

    The eagerly-scored ranking head and the pruned names travel instead
    of the full ranking, so tier-3 pruning's savings survive the
    process boundary.
    """
    document_triple: Optional[TripleTuple] = None
    elements: Optional[Tuple[ElementTuple, ...]] = None
    evaluation = result.evaluation
    if evaluation is not None:
        document_triple = tuple(evaluation.triple)
        elements = tuple(
            (entry.declared, tuple(entry.local_triple), tuple(entry.global_triple))
            for entry in evaluation.elements
        )
    return DocumentPayload(
        result.dtd_name,
        result.similarity,
        tuple(result.evaluated),
        tuple(result.pruned),
        document_triple,
        elements,
    )


def rebuild_classification(
    classifier: Classifier, document: Document, payload: DocumentPayload
) -> ClassificationResult:
    """Rebind a worker payload to the parent's live objects.

    Must run while the classifier still holds the epoch's DTD set
    (the driver merges strictly before any evolution): the evaluation
    attaches to the parent's DTD instance and the deferred ranking tail
    captures the parent's matchers, exactly as a serial classification
    at this point would have.
    """
    head = list(payload.evaluated)
    if payload.pruned:
        ranking = classifier.deferred_ranking(document, head, payload.pruned)
    else:
        ranking = head
    evaluation: Optional[DocumentEvaluation] = None
    if payload.dtd_name is not None:
        config = classifier.config
        dtd = classifier.dtd(payload.dtd_name)
        assert payload.elements is not None and payload.document_triple is not None
        element_evaluations = [
            ElementEvaluation(
                element,
                declared,
                EvalTriple(*local_triple),
                EvalTriple(*global_triple),
                config,
            )
            for element, (declared, local_triple, global_triple) in zip(
                document.root.iter_elements(), payload.elements
            )
        ]
        evaluation = DocumentEvaluation(
            document,
            dtd,
            EvalTriple(*payload.document_triple),
            element_evaluations,
            config,
        )
    return ClassificationResult(
        document,
        payload.dtd_name,
        payload.similarity,
        evaluation,
        ranking,
        evaluated=head,
        pruned=payload.pruned,
    )
