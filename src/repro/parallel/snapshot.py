"""The wire format between the driver and its workers.

Four shapes cross (or describe what crosses) the process boundary:

- :class:`ClassifierSnapshot` — the frozen classification state of one
  epoch (DTD set, ``sigma``, similarity and fast-path configuration).
  The engine pickles it **once per changed epoch** and addresses it by
  content fingerprint; unchanged epochs reuse the cached bytes without
  re-pickling (``snapshot_reuses`` counter).
- :class:`SnapshotRef` — what actually ships with every chunk: the
  fingerprint plus *where the bytes live*.  On platforms with POSIX
  shared memory the pickled snapshot is published once into a
  ``multiprocessing.shared_memory`` block and the ref carries only the
  block name (a few dozen bytes per chunk instead of the whole
  snapshot); elsewhere — or when shared memory fails — the ref inlines
  the pickle as a graceful fallback.  Workers cache the rebuilt
  classifier by fingerprint, so either way an unchanged snapshot is
  unpickled at most once per worker process.
- *payload tuples* — one document's classification result as a plain
  tuple ``(dtd_name, similarity, evaluated, pruned, document_triple,
  elements)``: the decision, the eagerly-scored ranking head, the names
  tier-3 pruning skipped (laziness is *preserved* across the boundary —
  the parent rebuilds the deferred tail against its own matchers), and
  the evaluation triples for accepted documents.  Tuples pickle to a
  fraction of the bytes an attribute-bearing class instance costs.
- :class:`ChunkResult` — a shard's payload tuples plus the worker's
  sparse cumulative counter report (nonzero entries only, keyed for
  duplicate-safe merging) and — **only on traced epochs** — the
  per-document span record batches.  Untraced runs ship no span field
  content at all (lazy span shipping).

:func:`payload_from` and :func:`rebuild_classification` are exact
inverses up to object identity: the rebuilt
:class:`~repro.classification.classifier.ClassificationResult` is bound
to the parent's document and DTD objects, with float-identical
similarities and triples (pickle round-trips floats bit-exactly).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.classification.classifier import ClassificationResult, Classifier
from repro.classification.sharding import ShardedClassifier, ShardMap
from repro.dtd.dtd import DTD
from repro.parallel.pool import register_for_atexit
from repro.perf import FastPathConfig, PerfCounters
from repro.similarity.evaluation import DocumentEvaluation, ElementEvaluation
from repro.similarity.triple import EvalTriple, SimilarityConfig
from repro.xmltree.document import Document

#: (plus, minus, common)
TripleTuple = Tuple[float, float, float]
#: (declared, local triple, global triple) per element, preorder
ElementTuple = Tuple[bool, TripleTuple, TripleTuple]
#: one document's classification on the wire: (dtd_name, similarity,
#: evaluated head, pruned names, document triple, element tuples)
PayloadTuple = Tuple[
    Optional[str],
    float,
    Tuple[Tuple[str, float], ...],
    Tuple[str, ...],
    Optional[TripleTuple],
    Optional[Tuple[ElementTuple, ...]],
]


def snapshot_fingerprint(payload: bytes) -> str:
    """The content address of a pickled snapshot."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class ClassifierSnapshot:
    """Immutable, picklable classification state for one epoch."""

    __slots__ = ("dtds", "threshold", "config", "fastpath", "traced", "shards")

    def __init__(
        self,
        dtds: Iterable[DTD],
        threshold: float,
        config: SimilarityConfig,
        fastpath: FastPathConfig,
        traced: bool = False,
        shards: Optional[ShardMap] = None,
    ):
        self.dtds: Tuple[DTD, ...] = tuple(dtds)
        self.threshold = threshold
        self.config = config
        self.fastpath = fastpath
        #: whether the parent wants per-document worker spans back
        self.traced = traced
        #: the parent's DTD shard map when it classifies sharded, so
        #: worker fan-out screens the same per-shard candidate sets
        #: (``None`` reconstructs a plain unsharded classifier)
        self.shards = shards

    @classmethod
    def of(cls, source: "XMLSource") -> "ClassifierSnapshot":
        """Freeze ``source``'s current classification state.

        Only exact tag matching is parallel-safe (a thesaurus matcher
        is stateful and unpicklable in general); the driver degrades to
        serial before ever snapshotting such a source.
        """
        classifier = source.classifier
        shards = (
            classifier.shard_map()
            if isinstance(classifier, ShardedClassifier)
            else None
        )
        return cls(
            (source.classifier.dtd(name) for name in source.dtd_names()),
            source.classifier.threshold,
            source.similarity_config,
            source.fastpath,
            traced=source.tracer.enabled,
            shards=shards,
        )

    def build_classifier(self, counters: Optional[PerfCounters] = None) -> Classifier:
        """Reconstruct a classifier (worker side, once per fingerprint)."""
        if self.shards is not None:
            return ShardedClassifier(
                self.dtds,
                self.threshold,
                self.config,
                tag_matcher=None,
                fastpath=self.fastpath,
                counters=counters,
                shard_map=self.shards,
            )
        return Classifier(
            self.dtds,
            self.threshold,
            self.config,
            tag_matcher=None,
            fastpath=self.fastpath,
            counters=counters,
        )

    def __repr__(self) -> str:
        names = [dtd.name for dtd in self.dtds]
        return f"ClassifierSnapshot(dtds={names!r}, sigma={self.threshold})"


class SnapshotRef(NamedTuple):
    """A chunk-sized handle to one published snapshot.

    Exactly one of ``shm_name`` / ``inline`` is set: shared-memory
    publication ships the block name and byte length; the fallback
    inlines the pickle itself.
    """

    fingerprint: str
    shm_name: Optional[str]
    size: int
    inline: Optional[bytes]


class SnapshotPublisher:
    """Parent-side snapshot publication, any number of live snapshots.

    ``publish`` is idempotent per fingerprint: re-publishing a live
    snapshot returns the existing ref.  Several snapshots can be live
    at once — shard fan-out publishes one per DTD shard for the same
    epoch — and :meth:`retain` trims the set down to exactly the
    fingerprints the next epoch still needs, unlinking everything else
    (by then every consumer of the dropped snapshots has been merged or
    discarded).  When shared memory is unavailable — or creation fails
    at runtime — the publisher degrades permanently to inline refs,
    which ship the pickled bytes with every chunk exactly as the
    pre-shared-memory driver did.
    """

    def __init__(self, shared: bool = True):
        self._shared = shared
        self._refs: Dict[str, SnapshotRef] = {}
        self._blocks: Dict[str, object] = {}
        register_for_atexit(self)

    def publish(self, fingerprint: str, payload: bytes) -> SnapshotRef:
        ref = self._refs.get(fingerprint)
        if ref is not None:
            return ref
        if self._shared:
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True, size=len(payload))
                shm.buf[: len(payload)] = payload
                self._blocks[fingerprint] = shm
                ref = SnapshotRef(fingerprint, shm.name, len(payload), None)
                self._refs[fingerprint] = ref
                return ref
            except Exception:
                # no /dev/shm, SELinux denial, ... — fall back for good
                self._shared = False
        ref = SnapshotRef(fingerprint, None, len(payload), payload)
        self._refs[fingerprint] = ref
        return ref

    def retain(self, fingerprints: Iterable[str]) -> None:
        """Release every published snapshot except ``fingerprints``."""
        keep = set(fingerprints)
        for fingerprint in list(self._refs):
            if fingerprint not in keep:
                self._release_one(fingerprint)

    def _release_one(self, fingerprint: str) -> None:
        self._refs.pop(fingerprint, None)
        shm = self._blocks.pop(fingerprint, None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def release(self) -> None:
        """Unlink every published shared-memory block."""
        for fingerprint in list(self._refs):
            self._release_one(fingerprint)

    def close(self) -> None:
        self.release()

    def __repr__(self) -> str:
        mode = "shared" if self._shared else "inline"
        live = sorted(fp[:8] for fp in self._refs)
        return f"SnapshotPublisher({mode}, live={live})"


class ChunkResult(NamedTuple):
    """What one worker task returns for one chunk of documents.

    ``counters`` is the worker's *cumulative* snapshot restricted to
    nonzero entries — the keyed duplicate-safe merge treats an absent
    key as unchanged, and per-process counters are monotone, so a key
    that was ever reported keeps being reported.  ``spans`` is ``None``
    on untraced epochs; on traced epochs it aligns with ``payloads``
    (one tuple of span records per document).
    """

    #: stable per-process identity — the duplicate-safe merge key
    worker_key: str
    #: sparse cumulative counter snapshot (nonzero entries only)
    counters: dict
    payloads: Tuple[PayloadTuple, ...]
    spans: Optional[Tuple[tuple, ...]] = None


def payload_from(result: ClassificationResult) -> PayloadTuple:
    """Flatten a classification result without realizing lazy work.

    The eagerly-scored ranking head and the pruned names travel instead
    of the full ranking, so tier-3 pruning's savings survive the
    process boundary.
    """
    document_triple: Optional[TripleTuple] = None
    elements: Optional[Tuple[ElementTuple, ...]] = None
    evaluation = result.evaluation
    if evaluation is not None:
        document_triple = tuple(evaluation.triple)
        elements = tuple(
            (entry.declared, tuple(entry.local_triple), tuple(entry.global_triple))
            for entry in evaluation.elements
        )
    return (
        result.dtd_name,
        result.similarity,
        tuple(result.evaluated),
        tuple(result.pruned),
        document_triple,
        elements,
    )


def rebuild_classification(
    classifier: Classifier, document: Document, payload: PayloadTuple
) -> ClassificationResult:
    """Rebind a worker payload tuple to the parent's live objects.

    Must run while the classifier still holds the epoch's DTD set
    (the driver merges strictly before any evolution): the evaluation
    attaches to the parent's DTD instance and the deferred ranking tail
    captures the parent's matchers, exactly as a serial classification
    at this point would have.
    """
    dtd_name, similarity, evaluated, pruned, document_triple, elements = payload
    head = list(evaluated)
    if pruned:
        ranking = classifier.deferred_ranking(document, head, pruned)
    else:
        ranking = head
    evaluation: Optional[DocumentEvaluation] = None
    if dtd_name is not None:
        config = classifier.config
        dtd = classifier.dtd(dtd_name)
        assert elements is not None and document_triple is not None
        element_evaluations = [
            ElementEvaluation(
                element,
                declared,
                EvalTriple(*local_triple),
                EvalTriple(*global_triple),
                config,
            )
            for element, (declared, local_triple, global_triple) in zip(
                document.root.iter_elements(), elements
            )
        ]
        evaluation = DocumentEvaluation(
            document,
            dtd,
            EvalTriple(*document_triple),
            element_evaluations,
            config,
        )
    return ClassificationResult(
        document,
        dtd_name,
        similarity,
        evaluation,
        ranking,
        evaluated=head,
        pruned=pruned,
    )
