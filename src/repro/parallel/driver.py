"""The classify-parallel / evolve-serial epoch driver.

``XMLSource.process_many(..., workers=N)`` delegates here.  The driver
owns a ``ProcessPoolExecutor`` for the duration of one batch and runs
the epoch loop described in :mod:`repro.parallel`: snapshot, fan out
chunks, merge strictly in submission order through the serial pipeline
stages, and restart the epoch whenever an evolution invalidates the
snapshot.  All engine state mutation happens on the parent process —
workers only ever *read* a frozen snapshot — so the merged run is
bit-identical to the serial one.

The evolve-serial gap between epochs is the driver's Amdahl term: every
evolution runs on the parent while the pool idles.  Incremental
evolution (dirty-element replay, the mined-rule memo) and the pruned
post-evolution drain (see :mod:`repro.perf`) shorten exactly that gap,
so they compound with parallel classification; workers themselves never
evolve, and the evolution timers they report in their cumulative
snapshots are simply zero.
"""

from __future__ import annotations

import math
import pickle
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.classification.classifier import ClassificationResult
from repro.parallel.events import ParallelFallback, ShardRetried
from repro.parallel.snapshot import ClassifierSnapshot, rebuild_classification
from repro.parallel.worker import classify_chunk
from repro.pipeline.context import ProcessOutcome
from repro.xmltree.document import Document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine → driver)
    from repro.core.engine import XMLSource

#: chunks per worker targeted by auto chunk sizing — small enough that
#: an early-epoch evolution discards little speculative work, large
#: enough that per-chunk pickling stays amortised
_CHUNKS_PER_WORKER = 4


class ParallelDriver:
    """Drives one parallel batch for one source."""

    def __init__(self, source: "XMLSource", workers: int, chunk_size: int = 0):
        if workers < 2:
            raise ValueError(f"ParallelDriver needs workers >= 2, got {workers}")
        self.source = source
        self.workers = workers
        #: documents per shard; 0 = auto (pending / (workers * 4))
        self.chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _retire_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _emit(self, event: object) -> None:
        self.source.pipeline.emit(event)

    def _delta(self):
        return self.source.pipeline.perf_delta()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def process(
        self,
        documents: List[Document],
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ) -> List[ProcessOutcome]:
        source = self.source
        outcomes: List[ProcessOutcome] = []
        if source.tag_matcher is not None:
            # thesaurus matchers are stateful and not parallel-safe;
            # degrade to the serial path for the whole batch
            self._emit(
                ParallelFallback(
                    0, -1, len(documents),
                    "thesaurus tag matcher installed; classifying in process",
                    self._delta(),
                )
            )
            for index, document in enumerate(documents, start=1):
                outcomes.append(source.process(document))
                self._checkpoint(index, checkpoint_every, checkpoint_path)
            return outcomes
        epoch = 0
        position = 0
        try:
            while position < len(documents):
                epoch += 1
                position += self._run_epoch(
                    epoch,
                    documents[position:],
                    outcomes,
                    position,
                    checkpoint_every,
                    checkpoint_path,
                )
        finally:
            self._retire_pool()
        return outcomes

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------

    def _chunks(self, pending: List[Document]) -> List[List[Document]]:
        size = self.chunk_size
        if size <= 0:
            size = max(
                1, math.ceil(len(pending) / (self.workers * _CHUNKS_PER_WORKER))
            )
        return [pending[i:i + size] for i in range(0, len(pending), size)]

    def _run_epoch(
        self,
        epoch: int,
        pending: List[Document],
        outcomes: List[ProcessOutcome],
        base_index: int,
        checkpoint_every: int,
        checkpoint_path: Optional[str],
    ) -> int:
        """Classify ``pending`` against a fresh snapshot and merge until
        the batch ends or an evolution stales the snapshot.  Returns how
        many documents were merged."""
        source = self.source
        tracer = source.tracer
        snapshot_bytes = pickle.dumps(
            ClassifierSnapshot.of(source), protocol=pickle.HIGHEST_PROTOCOL
        )
        chunks = self._chunks(pending)
        pool = self._ensure_pool()
        futures: List[Future] = [
            pool.submit(classify_chunk, epoch, snapshot_bytes, chunk)
            for chunk in chunks
        ]
        merged = 0
        epoch_span = (
            tracer.start(
                "epoch", epoch=epoch, pending=len(pending), shards=len(chunks)
            )
            if tracer.enabled
            else None
        )
        try:
            for shard_index, (chunk, future) in enumerate(zip(chunks, futures)):
                classifications = self._shard_classifications(
                    epoch, snapshot_bytes, shard_index, chunk, future
                )
                for document, (classification, spans) in zip(
                    chunk, classifications
                ):
                    if spans and epoch_span is not None:
                        # worker clocks are not comparable to ours:
                        # rebase the shipped spans to land at the merge
                        # point, parent them under this epoch
                        tracer.splice(
                            spans,
                            parent_id=epoch_span.span_id,
                            rebase_to=time.perf_counter_ns(),
                            doc_id=source.documents_processed + 1,
                            shard=shard_index,
                        )
                    outcome = source.process(document, classification)
                    outcomes.append(outcome)
                    merged += 1
                    self._checkpoint(
                        base_index + merged, checkpoint_every, checkpoint_path
                    )
                    if outcome.evolved:
                        # the snapshot is stale; unmerged shard results
                        # are discarded and the remainder re-sharded
                        return merged
        finally:
            if epoch_span is not None:
                epoch_span.set("merged", merged)
                tracer.finish(epoch_span)
            for future in futures:
                future.cancel()
        return merged

    def _shard_classifications(
        self,
        epoch: int,
        snapshot_bytes: bytes,
        shard_index: int,
        chunk: List[Document],
        future: Future,
    ) -> List[Tuple[ClassificationResult, Optional[tuple]]]:
        """One shard's ``(classification, worker spans)`` pairs, with
        retry-once and serial fallback (fallback pairs carry no spans —
        the in-process classification is traced by the pipeline's own
        ``doc`` span)."""
        source = self.source
        try:
            result = future.result()
        except Exception as error:  # dead worker, poison document, ...
            if isinstance(error, BrokenExecutor):
                self._retire_pool()
            self._emit(
                ShardRetried(epoch, shard_index, len(chunk), repr(error), self._delta())
            )
            try:
                retry = self._ensure_pool().submit(
                    classify_chunk, epoch, snapshot_bytes, chunk
                )
                result = retry.result()
            except Exception as retry_error:
                if isinstance(retry_error, BrokenExecutor):
                    self._retire_pool()
                self._emit(
                    ParallelFallback(
                        epoch, shard_index, len(chunk), repr(retry_error), self._delta()
                    )
                )
                # in-process classification: same classifier the serial
                # path would use, so results stay bit-identical
                return [
                    (source.classifier.classify(document), None)
                    for document in chunk
                ]
        source.perf.merge(result.counters, key=result.worker_key)
        return [
            (
                rebuild_classification(source.classifier, document, payload),
                payload.spans,
            )
            for document, payload in zip(chunk, result.payloads)
        ]

    # ------------------------------------------------------------------

    def _checkpoint(
        self, index: int, checkpoint_every: int, checkpoint_path: Optional[str]
    ) -> None:
        if checkpoint_every and checkpoint_path and index % checkpoint_every == 0:
            from repro.core.persistence import save_source

            save_source(self.source, checkpoint_path)

    def __repr__(self) -> str:
        return f"ParallelDriver(workers={self.workers})"
