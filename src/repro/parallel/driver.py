"""The classify-parallel / evolve-serial epoch driver.

``XMLSource.process_many(..., workers=N)`` delegates here.  The driver
borrows the engine's **persistent** :class:`~repro.parallel.pool.WorkerPool`
(one per worker count, alive across ``process_many`` calls until the
engine is closed) and runs the epoch loop described in
:mod:`repro.parallel`: publish the epoch's snapshot, fan out chunks,
merge strictly in submission order through the serial pipeline stages,
and restart the epoch whenever an evolution invalidates the snapshot.
All engine state mutation happens on the parent process — workers only
ever *read* a frozen snapshot — so the merged run is bit-identical to
the serial one.

Overhead posture (the reason parallelism pays):

- snapshots are pickled once per *changed* epoch by the engine and
  shipped as a :class:`~repro.parallel.snapshot.SnapshotRef` — a
  fingerprint plus a shared-memory block name (or the bytes inline on
  platforms without shared memory);
- results come back as chunk-level batches of plain tuples, with span
  records shipped only on traced epochs and counters as sparse
  cumulative reports;
- in **overlap mode** (the default) chunk submission is windowed: the
  driver keeps ``workers * 4`` shards in flight and tops the window up
  *before* merging each completed shard, so workers keep classifying
  upcoming shards while the parent replays merges — and an evolution
  discards at most a window of speculative work instead of the whole
  remainder of the batch;
- on a **sharded** engine each epoch first tries *shard fan-out*:
  documents overlapping exactly one DTD shard ship to workers that
  rebuild only that shard's DTD subset (one per-shard snapshot, keyed
  by its own content fingerprint), while fallback documents — zero or
  several overlapping shards, the depth guard, or a worker result the
  screen cannot certify — are classified serially on the parent inside
  the in-order merge, keeping results bit-identical to serial.

The evolve-serial gap between epochs is the driver's Amdahl term: every
evolution runs on the parent while the pool idles.  Incremental
evolution (dirty-element replay, the mined-rule memo) and the pruned
post-evolution drain (see :mod:`repro.perf`) shorten exactly that gap,
so they compound with parallel classification; workers themselves never
evolve, and the evolution timers in their cumulative reports stay zero.
"""

from __future__ import annotations

import math
import pickle
import time
from collections import deque
from concurrent.futures import BrokenExecutor, Future
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.classification.classifier import ClassificationResult
from repro.parallel.events import ParallelFallback, ShardRetried
from repro.parallel.snapshot import SnapshotRef, rebuild_classification
from repro.parallel.worker import classify_chunk
from repro.pipeline.context import ProcessOutcome
from repro.xmltree.document import Document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine → driver)
    from repro.core.engine import XMLSource
    from repro.parallel.pool import WorkerPool

#: in-flight chunks per worker targeted by the overlap window and by
#: auto chunk sizing — small enough that an early-epoch evolution
#: discards little speculative work, large enough that per-chunk
#: submission overhead stays amortised
_CHUNKS_PER_WORKER = 4

#: auto chunk sizing never exceeds this many documents per shard in
#: overlap mode, so the window refills at a granularity that keeps the
#: merge loop and the workers busy simultaneously
_MAX_OVERLAP_CHUNK = 32


class ParallelDriver:
    """Drives one parallel batch for one source."""

    def __init__(
        self,
        source: "XMLSource",
        workers: int,
        chunk_size: int = 0,
        overlap: bool = True,
    ):
        if workers < 2:
            raise ValueError(f"ParallelDriver needs workers >= 2, got {workers}")
        self.source = source
        self.workers = workers
        #: documents per shard; 0 = auto (pending / (workers * 4),
        #: capped at ``_MAX_OVERLAP_CHUNK`` in overlap mode)
        self.chunk_size = chunk_size
        #: windowed submission (see module docstring); ``False`` submits
        #: every shard of the epoch up front
        self.overlap = overlap

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _emit(self, event: object) -> None:
        self.source.pipeline.emit(event)

    def _delta(self):
        return self.source.pipeline.perf_delta()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def process(
        self,
        documents: List[Document],
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ) -> List[ProcessOutcome]:
        source = self.source
        outcomes: List[ProcessOutcome] = []
        if source.tag_matcher is not None:
            # thesaurus matchers are stateful and not parallel-safe;
            # degrade to the serial path for the whole batch
            self._emit(
                ParallelFallback(
                    0, -1, len(documents),
                    "thesaurus tag matcher installed; classifying in process",
                    self._delta(),
                )
            )
            for index, document in enumerate(documents, start=1):
                outcomes.append(source.process(document))
                self._checkpoint(index, checkpoint_every, checkpoint_path)
            return outcomes
        pool = source.worker_pool(self.workers)
        pool.lease()
        epoch = 0
        position = 0
        # the merge deposits through the serial stages; one batched-
        # ingestion window covers the whole parallel batch exactly as
        # the serial path's does
        with source.repository.bulk():
            while position < len(documents):
                epoch += 1
                position += self._run_epoch(
                    epoch,
                    pool,
                    documents[position:],
                    outcomes,
                    position,
                    checkpoint_every,
                    checkpoint_path,
                )
        return outcomes

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------

    def _chunks(self, pending: List[Document]) -> List[List[Document]]:
        size = self.chunk_size
        if size <= 0:
            size = max(
                1, math.ceil(len(pending) / (self.workers * _CHUNKS_PER_WORKER))
            )
            if self.overlap:
                size = min(size, _MAX_OVERLAP_CHUNK)
        return [pending[i:i + size] for i in range(0, len(pending), size)]

    def _run_epoch(
        self,
        epoch: int,
        pool: "WorkerPool",
        pending: List[Document],
        outcomes: List[ProcessOutcome],
        base_index: int,
        checkpoint_every: int,
        checkpoint_path: Optional[str],
    ) -> int:
        """Classify ``pending`` against the current snapshot and merge
        until the batch ends or an evolution stales it.  Returns how
        many documents were merged."""
        source = self.source
        tracer = source.tracer
        classifier = source.classifier
        if getattr(classifier, "fanout_eligible", None) and classifier.fanout_eligible():
            routes = [classifier.fanout_route(document) for document in pending]
            if any(route is not None for route in routes):
                return self._run_fanout_epoch(
                    epoch,
                    pool,
                    pending,
                    routes,
                    outcomes,
                    base_index,
                    checkpoint_every,
                    checkpoint_path,
                )
            # nothing routable this epoch — fall through to the
            # ordinary full-snapshot fan-out by document chunk
        ref = source.snapshot_wire()
        chunks = self._chunks(pending)
        window = (
            self.workers * _CHUNKS_PER_WORKER if self.overlap else len(chunks)
        )
        next_chunk = 0
        in_flight: Deque[Tuple[int, Future]] = deque()
        while next_chunk < len(chunks) and len(in_flight) < window:
            in_flight.append(
                (next_chunk, pool.submit(classify_chunk, ref, chunks[next_chunk]))
            )
            next_chunk += 1
        merged = 0
        epoch_span = (
            tracer.start(
                "epoch", epoch=epoch, pending=len(pending), shards=len(chunks)
            )
            if tracer.enabled
            else None
        )
        try:
            while in_flight:
                shard_index, future = in_flight.popleft()
                # top the window up *before* merging: workers classify
                # ahead while the parent replays this shard's merges
                if next_chunk < len(chunks):
                    in_flight.append(
                        (
                            next_chunk,
                            pool.submit(classify_chunk, ref, chunks[next_chunk]),
                        )
                    )
                    next_chunk += 1
                chunk = chunks[shard_index]
                classifications, wire_bytes = self._shard_classifications(
                    epoch, pool, ref, shard_index, chunk, future
                )
                for document, (classification, spans) in zip(
                    chunk, classifications
                ):
                    if spans and epoch_span is not None:
                        # worker clocks are not comparable to ours:
                        # rebase the shipped spans to land at the merge
                        # point, parent them under this epoch.
                        # ``wire_bytes`` is this document's share of the
                        # chunk's measured result bytes, so summing it
                        # over ``worker.classify`` spans reconstructs
                        # the shipped total (see ``repro report``).
                        tracer.splice(
                            spans,
                            parent_id=epoch_span.span_id,
                            rebase_to=time.perf_counter_ns(),
                            doc_id=source.documents_processed + 1,
                            shard=shard_index,
                            pool_gen=pool.generation,
                            wire_bytes=round(wire_bytes / len(chunk)),
                        )
                    outcome = source.process(document, classification)
                    outcomes.append(outcome)
                    merged += 1
                    self._checkpoint(
                        base_index + merged, checkpoint_every, checkpoint_path
                    )
                    if outcome.evolved:
                        # the snapshot is stale; in-flight shard results
                        # are discarded, the unsubmitted remainder was
                        # never shipped, and the rest re-shards
                        return merged
        finally:
            if epoch_span is not None:
                epoch_span.set("merged", merged)
                tracer.finish(epoch_span)
            for _, future in in_flight:
                future.cancel()
        return merged

    # ------------------------------------------------------------------
    # Shard fan-out epochs
    # ------------------------------------------------------------------

    def _run_fanout_epoch(
        self,
        epoch: int,
        pool: "WorkerPool",
        pending: List[Document],
        routes: List[Optional[int]],
        outcomes: List[ProcessOutcome],
        base_index: int,
        checkpoint_every: int,
        checkpoint_path: Optional[str],
    ) -> int:
        """One epoch where classification fans out per DTD shard.

        A document that routes to exactly one shard ships to workers
        holding only that shard's DTD subset (a plain classifier over
        the subset evaluates the same candidate set, in the same order,
        as the serial sharded screen); every other document — no
        overlapping shard, several, or the depth guard — stays on the
        serial path, classified on the parent inside the merge.  The
        merge walks the batch strictly in order either way, so
        outcomes, repository contents, events and the evolution log are
        bit-identical to serial (DESIGN.md decision 14).
        """
        source = self.source
        tracer = source.tracer
        shard_map, refs = source.shard_snapshot_wire()
        source.perf.shard_fanout_epochs += 1
        #: the other shards' names per route, extending each worker
        #: payload's pruned tail exactly as the serial screen would
        screened_by_route: Dict[int, Tuple[str, ...]] = {}

        by_shard: Dict[int, List[int]] = {}
        for position, route in enumerate(routes):
            if route is not None:
                by_shard.setdefault(route, []).append(position)
        routed_total = sum(len(positions) for positions in by_shard.values())
        size = self.chunk_size
        if size <= 0:
            size = max(
                1, math.ceil(routed_total / (self.workers * _CHUNKS_PER_WORKER))
            )
            if self.overlap:
                size = min(size, _MAX_OVERLAP_CHUNK)
        chunks: List[Tuple[int, List[int]]] = []
        for shard_index in sorted(by_shard):
            positions = by_shard[shard_index]
            for start in range(0, len(positions), size):
                chunks.append((shard_index, positions[start:start + size]))
        # submit in merge order: the chunk the merge will block on first
        # is always the first one in flight
        chunks.sort(key=lambda entry: entry[1][0])
        window = (
            self.workers * _CHUNKS_PER_WORKER if self.overlap else len(chunks)
        )
        next_chunk = 0
        in_flight: Deque[Tuple[int, Future]] = deque()

        def submit_next() -> None:
            nonlocal next_chunk
            shard_index, positions = chunks[next_chunk]
            in_flight.append(
                (
                    next_chunk,
                    pool.submit(
                        classify_chunk,
                        refs[shard_index],
                        [pending[p] for p in positions],
                    ),
                )
            )
            next_chunk += 1

        while next_chunk < len(chunks) and len(in_flight) < window:
            submit_next()
        #: position → (payload or None, spans, wire share, shard index)
        ready: Dict[int, tuple] = {}
        merged = 0
        epoch_span = (
            tracer.start(
                "epoch",
                epoch=epoch,
                pending=len(pending),
                shards=len(chunks),
                fanout=len(shard_map),
            )
            if tracer.enabled
            else None
        )
        try:
            for position, document in enumerate(pending):
                route = routes[position]
                classification: Optional[ClassificationResult] = None
                spans = None
                wire_share = 0
                shard_index = -1
                if route is not None:
                    while position not in ready:
                        if not in_flight:
                            submit_next()
                        chunk_index, future = in_flight.popleft()
                        # top the window up *before* resolving: workers
                        # classify ahead while the parent merges
                        if next_chunk < len(chunks):
                            submit_next()
                        self._resolve_fanout_chunk(
                            epoch, pool, chunks[chunk_index], refs,
                            pending, future, ready,
                        )
                    payload, spans, wire_share, shard_index = ready.pop(position)
                    if payload is not None and payload[1] > 0.0:
                        screened = screened_by_route.get(route)
                        if screened is None:
                            screened = tuple(
                                name
                                for index, shard in enumerate(shard_map)
                                if index != route
                                for name in shard
                            )
                            screened_by_route[route] = screened
                        dtd_name, similarity, evaluated, pruned, triple, elements = payload
                        classification = rebuild_classification(
                            source.classifier,
                            document,
                            (
                                dtd_name,
                                similarity,
                                evaluated,
                                pruned + screened,
                                triple,
                                elements,
                            ),
                        )
                        source.perf.shard_skips += len(shard_map) - 1
                    # else: chunk fell back (payload None) or the best
                    # similarity was 0.0 — a zero tie breaks on name
                    # across the FULL DTD set, which may live in another
                    # shard — so the serial classify below reproduces
                    # the exact serial result
                if spans and epoch_span is not None:
                    tracer.splice(
                        spans,
                        parent_id=epoch_span.span_id,
                        rebase_to=time.perf_counter_ns(),
                        doc_id=source.documents_processed + 1,
                        shard=shard_index,
                        pool_gen=pool.generation,
                        wire_bytes=wire_share,
                    )
                outcome = source.process(document, classification)
                outcomes.append(outcome)
                merged += 1
                self._checkpoint(
                    base_index + merged, checkpoint_every, checkpoint_path
                )
                if outcome.evolved:
                    # the shard snapshots are stale; the outer loop
                    # re-routes and re-publishes against the evolved set
                    return merged
        finally:
            if epoch_span is not None:
                epoch_span.set("merged", merged)
                tracer.finish(epoch_span)
            for _, future in in_flight:
                future.cancel()
        return merged

    def _resolve_fanout_chunk(
        self,
        epoch: int,
        pool: "WorkerPool",
        chunk: Tuple[int, List[int]],
        refs: List[SnapshotRef],
        pending: List[Document],
        future: Future,
        ready: Dict[int, tuple],
    ) -> None:
        """Fold one fan-out chunk's results into ``ready``, with
        retry-once; a chunk that still fails marks its positions for
        the serial fallback (payload ``None``) instead of dying."""
        source = self.source
        shard_index, positions = chunk
        documents = [pending[p] for p in positions]
        try:
            result = future.result()
        except Exception as error:
            if isinstance(error, BrokenExecutor):
                pool.retire()
            self._emit(
                ShardRetried(
                    epoch, shard_index, len(documents), repr(error), self._delta()
                )
            )
            try:
                retry = pool.submit(
                    classify_chunk, refs[shard_index], documents
                )
                result = retry.result()
            except Exception as retry_error:
                if isinstance(retry_error, BrokenExecutor):
                    pool.retire()
                self._emit(
                    ParallelFallback(
                        epoch,
                        shard_index,
                        len(documents),
                        repr(retry_error),
                        self._delta(),
                    )
                )
                for position in positions:
                    ready[position] = (None, None, 0, shard_index)
                return
        source.perf.merge(result.counters, key=result.worker_key)
        wire_share = 0
        if source.tracer.enabled:
            # traced runs only (see _shard_classifications)
            wire_share = round(
                len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
                / max(1, len(documents))
            )
        spans = result.spans
        for offset, position in enumerate(positions):
            ready[position] = (
                result.payloads[offset],
                spans[offset] if spans else None,
                wire_share,
                shard_index,
            )

    def _shard_classifications(
        self,
        epoch: int,
        pool: "WorkerPool",
        ref: SnapshotRef,
        shard_index: int,
        chunk: List[Document],
        future: Future,
    ) -> Tuple[List[Tuple[ClassificationResult, Optional[tuple]]], int]:
        """One shard's ``(classification, worker spans)`` pairs plus the
        shard's measured wire bytes, with retry-once and serial fallback
        (fallback pairs carry no spans — the in-process classification
        is traced by the pipeline's own ``doc`` span)."""
        source = self.source
        try:
            result = future.result()
        except Exception as error:  # dead worker, poison document, ...
            if isinstance(error, BrokenExecutor):
                # discard the broken executor; the pool respins a fresh
                # one (new generation) on the retry submit below
                pool.retire()
            self._emit(
                ShardRetried(epoch, shard_index, len(chunk), repr(error), self._delta())
            )
            try:
                retry = pool.submit(classify_chunk, ref, chunk)
                result = retry.result()
            except Exception as retry_error:
                if isinstance(retry_error, BrokenExecutor):
                    pool.retire()
                self._emit(
                    ParallelFallback(
                        epoch, shard_index, len(chunk), repr(retry_error), self._delta()
                    )
                )
                # in-process classification: same classifier the serial
                # path would use, so results stay bit-identical
                return [
                    (source.classifier.classify(document), None)
                    for document in chunk
                ], 0
        source.perf.merge(result.counters, key=result.worker_key)
        wire_bytes = 0
        if source.tracer.enabled:
            # traced runs only: re-measure what this shard shipped so
            # `repro report` can show bytes-on-the-wire per worker.
            # Untraced runs never pay this re-pickle.
            wire_bytes = len(
                pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            )
        spans = result.spans
        pairs = [
            (
                rebuild_classification(source.classifier, document, payload),
                spans[position] if spans else None,
            )
            for position, (document, payload) in enumerate(
                zip(chunk, result.payloads)
            )
        ]
        return pairs, wire_bytes

    # ------------------------------------------------------------------

    def _checkpoint(
        self, index: int, checkpoint_every: int, checkpoint_path: Optional[str]
    ) -> None:
        if checkpoint_every and checkpoint_path and index % checkpoint_every == 0:
            from repro.core.persistence import save_source

            save_source(self.source, checkpoint_path)

    def __repr__(self) -> str:
        return (
            f"ParallelDriver(workers={self.workers}, overlap={self.overlap})"
        )
