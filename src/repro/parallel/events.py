"""Warning events of the parallel classification driver.

Both ride the engine's normal :class:`~repro.pipeline.events.EventBus`
(subscribe exactly like the lifecycle events) and carry the same sparse
``perf_delta`` attribution, so the bus-mirrored counters stay a
complete account even across retries and fallbacks.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple

_NO_DELTA: Mapping[str, int] = {}


class ShardRetried(NamedTuple):
    """A shard's worker task failed; the shard is being resubmitted.

    Emitted at most once per shard (retry-once semantics); a second
    failure produces :class:`ParallelFallback` instead.
    """

    epoch: int
    shard_index: int
    #: documents in the shard
    documents: int
    #: repr of the failure (a dead worker surfaces as BrokenProcessPool)
    error: str
    perf_delta: Mapping[str, int] = _NO_DELTA


class ParallelFallback(NamedTuple):
    """Parallel classification was abandoned for part (or all) of the
    batch; the affected documents are classified serially in-process.

    ``shard_index`` is ``-1`` when the whole batch degraded (e.g. a
    thesaurus tag matcher, which is not parallel-safe, is installed).
    The batch still completes with bit-identical results — this event
    is the warning that it did so without the worker pool.
    """

    epoch: int
    shard_index: int
    documents: int
    reason: str
    perf_delta: Mapping[str, int] = _NO_DELTA
