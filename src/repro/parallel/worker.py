"""Worker-process side of parallel classification.

Each pool process keeps a tiny module-global state: one
:class:`~repro.perf.PerfCounters` for its whole lifetime (so reported
snapshots are cumulative and monotone — what the duplicate-safe merge
on the parent expects) and a small fingerprint-keyed cache of rebuilt
classifiers.  Because the cache key is the snapshot's *content*
fingerprint rather than an epoch number, a classifier — and its warm
structural-fingerprint cache — survives epoch boundaries that didn't
change the DTD set, and even survives across ``process_many`` calls
when the persistent pool keeps the process alive.

Snapshot bytes arrive by reference (:class:`SnapshotRef`): either the
name of a ``multiprocessing.shared_memory`` block the parent published
once per changed snapshot, or — on platforms without shared memory —
the pickled bytes inline.  A cache hit never touches the bytes at all.
"""

from __future__ import annotations

import os
import pickle
import uuid
from typing import Dict, List, Optional, Tuple

from repro.classification.classifier import Classifier
from repro.obs.tracing import SpanCollector
from repro.parallel.snapshot import (
    ChunkResult,
    PayloadTuple,
    SnapshotRef,
    payload_from,
)
from repro.perf import PerfCounters
from repro.xmltree.document import Document

#: rebuilt classifiers a worker keeps warm.  Shard fan-out epochs give
#: every worker several live fingerprints at once (one per DTD shard
#: it happens to serve), so the cache holds a handful of shard subsets
#: plus the full snapshot across an epoch turnover while still
#: bounding memory on long evolution-heavy runs
_CLASSIFIER_CACHE_SIZE = 8

#: per-process state; forked children inherit the parent's (empty)
#: containers and populate their own copies
_CLASSIFIERS: "Dict[str, Tuple[Classifier, bool]]" = {}
_COUNTERS: List[PerfCounters] = []
_WORKER_KEY: List[str] = []
_COLLECTOR: List[SpanCollector] = []


def _worker_counters() -> PerfCounters:
    if not _COUNTERS:
        _COUNTERS.append(PerfCounters())
    return _COUNTERS[0]


def _worker_key() -> str:
    # pid alone could recycle across pool recreations; the uuid pins
    # the key to this exact process lifetime
    if not _WORKER_KEY:
        _WORKER_KEY.append(f"{os.getpid()}:{uuid.uuid4().hex}")
    return _WORKER_KEY[0]


def _worker_collector() -> SpanCollector:
    if not _COLLECTOR:
        _COLLECTOR.append(SpanCollector())
    return _COLLECTOR[0]


def _snapshot_bytes(ref: SnapshotRef) -> bytes:
    """Fetch the pickled snapshot the ref points at (cache-miss path)."""
    if ref.inline is not None:
        return ref.inline
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=ref.shm_name)
    try:
        return bytes(shm.buf[: ref.size])
    finally:
        shm.close()


def _classifier_for(ref: SnapshotRef) -> Tuple[Classifier, bool]:
    entry = _CLASSIFIERS.get(ref.fingerprint)
    if entry is None:
        snapshot = pickle.loads(_snapshot_bytes(ref))
        entry = (
            snapshot.build_classifier(_worker_counters()),
            getattr(snapshot, "traced", False),
        )
        while len(_CLASSIFIERS) >= _CLASSIFIER_CACHE_SIZE:
            _CLASSIFIERS.pop(next(iter(_CLASSIFIERS)))
        _CLASSIFIERS[ref.fingerprint] = entry
    return entry


def _sparse_counters() -> Dict[str, int]:
    """The worker's cumulative snapshot, nonzero entries only.

    Safe to ship sparse because per-process counters are monotone: a
    key that was ever nonzero stays nonzero, so the parent's keyed
    diff never sees a reported key disappear.
    """
    return {
        name: value
        for name, value in _worker_counters().snapshot().items()
        if value
    }


def classify_chunk(ref: SnapshotRef, documents: List[Document]) -> ChunkResult:
    """Classify one chunk against the snapshot ``ref`` points at.

    On traced epochs each document's classification is wrapped in a
    ``worker.classify`` span (worker pid attached); the finished span
    records travel back **chunk-level** — one batch per document,
    aligned with the payload tuples — so untraced runs ship no span
    field at all.  Tracing never touches the classification itself:
    payload contents are byte-identical either way.
    """
    classifier, traced = _classifier_for(ref)
    if not traced:
        payloads: Tuple[PayloadTuple, ...] = tuple(
            payload_from(classifier.classify(document)) for document in documents
        )
        return ChunkResult(_worker_key(), _sparse_counters(), payloads)
    collector = _worker_collector()
    pid = os.getpid()
    payload_list: List[PayloadTuple] = []
    span_batches: List[tuple] = []
    for document in documents:
        with collector.span("worker.classify", worker=pid, root=document.root.tag):
            result = classifier.classify(document)
        payload_list.append(payload_from(result))
        span_batches.append(collector.take_records())
    return ChunkResult(
        _worker_key(), _sparse_counters(), tuple(payload_list), tuple(span_batches)
    )
