"""Worker-process side of parallel classification.

Each pool process keeps a tiny module-global state: one
:class:`~repro.perf.PerfCounters` for its whole lifetime (so reported
snapshots are cumulative and monotone — what the duplicate-safe merge
on the parent expects) and one rebuilt classifier per epoch, cached so
the structural-fingerprint cache stays warm across every chunk the
worker handles within an epoch.
"""

from __future__ import annotations

import os
import pickle
import uuid
from typing import Dict, List, Tuple

from repro.classification.classifier import Classifier
from repro.obs.tracing import SpanCollector
from repro.parallel.snapshot import ChunkResult, DocumentPayload, payload_from
from repro.perf import PerfCounters
from repro.xmltree.document import Document

#: per-process state; forked children inherit the parent's (empty) dicts
#: and populate their own copies
_CLASSIFIERS: Dict[int, Tuple[Classifier, bool]] = {}
_COUNTERS: List[PerfCounters] = []
_WORKER_KEY: List[str] = []
_COLLECTOR: List[SpanCollector] = []


def _worker_counters() -> PerfCounters:
    if not _COUNTERS:
        _COUNTERS.append(PerfCounters())
    return _COUNTERS[0]


def _worker_key() -> str:
    # pid alone could recycle across pool recreations; the uuid pins
    # the key to this exact process lifetime
    if not _WORKER_KEY:
        _WORKER_KEY.append(f"{os.getpid()}:{uuid.uuid4().hex}")
    return _WORKER_KEY[0]


def _worker_collector() -> SpanCollector:
    if not _COLLECTOR:
        _COLLECTOR.append(SpanCollector())
    return _COLLECTOR[0]


def _classifier_for(epoch: int, snapshot_bytes: bytes) -> Tuple[Classifier, bool]:
    entry = _CLASSIFIERS.get(epoch)
    if entry is None:
        snapshot = pickle.loads(snapshot_bytes)
        entry = (
            snapshot.build_classifier(_worker_counters()),
            getattr(snapshot, "traced", False),
        )
        _CLASSIFIERS[epoch] = entry
    return entry


def classify_chunk(
    epoch: int, snapshot_bytes: bytes, documents: List[Document]
) -> ChunkResult:
    """Classify one chunk against the epoch's frozen DTD set.

    On traced epochs each document's classification is wrapped in a
    ``worker.classify`` span (worker pid attached); the finished span
    records travel back on the payload for the parent to splice under
    its epoch span.  Tracing never touches the classification itself —
    payload contents are byte-identical either way.
    """
    classifier, traced = _classifier_for(epoch, snapshot_bytes)
    if not traced:
        payloads: List[DocumentPayload] = [
            payload_from(classifier.classify(document)) for document in documents
        ]
        return ChunkResult(_worker_key(), _worker_counters().snapshot(), payloads)
    collector = _worker_collector()
    pid = os.getpid()
    payloads = []
    for document in documents:
        with collector.span("worker.classify", worker=pid, root=document.root.tag):
            result = classifier.classify(document)
        payload = payload_from(result)
        payload.spans = collector.take_records()
        payloads.append(payload)
    return ChunkResult(_worker_key(), _worker_counters().snapshot(), payloads)
