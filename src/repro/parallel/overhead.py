"""Offline measurement of the parallel driver's wire overhead.

The hot path deliberately never weighs its own traffic (measuring means
re-pickling); benchmarks call :func:`wire_overhead` instead to record
the overhead-breakdown trend — how big the pickled snapshot is, how
long it takes to build, and how many bytes one document's result costs
on the wire — without perturbing the run being measured.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Dict, Iterable, Union

from repro.parallel.snapshot import ClassifierSnapshot, payload_from
from repro.xmltree.document import Document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import XMLSource


def wire_overhead(
    source: "XMLSource", documents: Iterable[Document]
) -> Dict[str, Union[int, float]]:
    """Measure what shipping ``source``'s state and results would cost.

    Classifies ``documents`` against a classifier rebuilt from the
    snapshot exactly as a worker would (own counters, so the source's
    perf state is untouched) and weighs each flattened payload tuple.

    Returns ``snapshot_bytes`` (one pickled
    :class:`~repro.parallel.snapshot.ClassifierSnapshot`),
    ``snapshot_serialize_seconds`` (the build-and-pickle cost paid once
    per changed epoch), and ``payload_bytes_per_doc`` (mean pickled
    payload-tuple size — the per-document return traffic, excluding the
    constant chunk framing).
    """
    start = time.perf_counter()
    payload = pickle.dumps(
        ClassifierSnapshot.of(source), protocol=pickle.HIGHEST_PROTOCOL
    )
    snapshot_serialize_seconds = time.perf_counter() - start
    classifier = pickle.loads(payload).build_classifier()
    documents = list(documents)
    result_bytes = 0
    for document in documents:
        result_bytes += len(
            pickle.dumps(
                payload_from(classifier.classify(document)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
    return {
        "snapshot_bytes": len(payload),
        "snapshot_serialize_seconds": snapshot_serialize_seconds,
        "payload_bytes_per_doc": (
            result_bytes / len(documents) if documents else 0.0
        ),
    }
