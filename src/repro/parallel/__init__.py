"""Parallel batch classification over an immutable DTD-set snapshot.

The Figure-1 loop mutates the DTD set only at evolution points; between
them, classifying a batch against the frozen set is embarrassingly
parallel.  :meth:`repro.core.engine.XMLSource.process_many` with
``workers=N`` shards the pending documents across a
``ProcessPoolExecutor`` and merges the results back **in submission
order**, replaying each worker-computed classification through the
normal serial pipeline stages, so rankings, evaluations, repository
deposits, the evolution log, and the lifecycle event sequence are
bit-identical to the serial path (asserted by
``tests/test_parallel_differential.py``).

Evolution stays serialized through *epochs*:

1. **snapshot** — the current DTD set, classification threshold and
   similarity/fast-path configuration are frozen into a picklable
   :class:`~repro.parallel.snapshot.ClassifierSnapshot` (pickled once
   per epoch);
2. **classify-parallel** — the remaining documents are cut into
   chunks; each worker process rebuilds the classifier from the
   snapshot once per epoch (keeping a per-worker structural-fingerprint
   cache warm across its chunks) and ships back compact
   :class:`~repro.parallel.snapshot.DocumentPayload` results;
3. **evolve-serial** — the driver merges chunk results in order,
   running the record/check/evolve/drain stages in-process per
   document; the moment an evolution fires, the snapshot is stale, the
   epoch ends, unmerged shard results are discarded, and the remainder
   of the batch is re-sharded against a fresh snapshot.

Graceful degradation: a shard whose worker dies (or whose documents
poison it) is retried once — on a fresh pool if the old one broke — and
then falls back to in-process serial classification, announced by
:class:`~repro.parallel.events.ShardRetried` and
:class:`~repro.parallel.events.ParallelFallback` warning events rather
than failing the batch.  Worker fast-path counters fold into the
engine's :class:`~repro.perf.PerfCounters` through the duplicate-safe
:meth:`~repro.perf.PerfCounters.merge`, so ``perf_snapshot()`` (and its
bus mirror) still accounts for all classification work.
"""

from repro.parallel.driver import ParallelDriver
from repro.parallel.events import ParallelFallback, ShardRetried
from repro.parallel.snapshot import (
    ChunkResult,
    ClassifierSnapshot,
    DocumentPayload,
    payload_from,
    rebuild_classification,
)

__all__ = [
    "ParallelDriver",
    "ParallelFallback",
    "ShardRetried",
    "ChunkResult",
    "ClassifierSnapshot",
    "DocumentPayload",
    "payload_from",
    "rebuild_classification",
]
