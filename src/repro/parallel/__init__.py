"""Parallel batch classification over an immutable DTD-set snapshot.

The Figure-1 loop mutates the DTD set only at evolution points; between
them, classifying a batch against the frozen set is embarrassingly
parallel.  :meth:`repro.core.engine.XMLSource.process_many` with
``workers=N`` shards the pending documents across the engine's
**persistent** :class:`~repro.parallel.pool.WorkerPool` and merges the
results back **in submission order**, replaying each worker-computed
classification through the normal serial pipeline stages, so rankings,
evaluations, repository deposits, the evolution log, and the lifecycle
event sequence are bit-identical to the serial path (asserted by
``tests/test_parallel_differential.py``).

Evolution stays serialized through *epochs*:

1. **snapshot** — the current DTD set, classification threshold and
   similarity/fast-path configuration are frozen into a picklable
   :class:`~repro.parallel.snapshot.ClassifierSnapshot`.  The engine
   pickles it once per *changed* epoch (a cheap state version keys the
   cache) and publishes the bytes via ``multiprocessing.shared_memory``
   addressed by content fingerprint, so each chunk ships only a small
   :class:`~repro.parallel.snapshot.SnapshotRef` (inline-pickle
   fallback on platforms without shared memory);
2. **classify-parallel** — the remaining documents are cut into chunks
   and submitted through a bounded in-flight window (overlap mode, the
   default: the window tops up before each merge so workers classify
   ahead while the parent replays merges); each worker rebuilds the
   classifier once per snapshot fingerprint — keeping it, and its warm
   structural-fingerprint cache, across epochs and batches — and ships
   back a chunk-level :class:`~repro.parallel.snapshot.ChunkResult` of
   compact payload tuples, sparse cumulative counters, and (on traced
   epochs only) span records;
3. **evolve-serial** — the driver merges chunk results in order,
   running the record/check/evolve/drain stages in-process per
   document; the moment an evolution fires, the snapshot is stale, the
   epoch ends, in-flight shard results are discarded (the unsubmitted
   remainder was never shipped), and the rest of the batch is
   re-sharded against a fresh snapshot.

Graceful degradation: a shard whose worker dies (or whose documents
poison it) is retried once — the broken executor is retired and the
persistent pool respins a fresh one — and then falls back to in-process
serial classification, announced by
:class:`~repro.parallel.events.ShardRetried` and
:class:`~repro.parallel.events.ParallelFallback` warning events rather
than failing the batch.  Worker fast-path counters fold into the
engine's :class:`~repro.perf.PerfCounters` through the duplicate-safe
:meth:`~repro.perf.PerfCounters.merge`, so ``perf_snapshot()`` (and its
bus mirror) still accounts for all classification work.

Pools and published snapshots live until ``XMLSource.close()`` (or the
engine's context-manager exit); an ``atexit`` sweep covers anything
left open (see :mod:`repro.parallel.pool`).
"""

from repro.parallel.driver import ParallelDriver
from repro.parallel.events import ParallelFallback, ShardRetried
from repro.parallel.overhead import wire_overhead
from repro.parallel.pool import WorkerPool
from repro.parallel.snapshot import (
    ChunkResult,
    ClassifierSnapshot,
    SnapshotPublisher,
    SnapshotRef,
    payload_from,
    rebuild_classification,
    snapshot_fingerprint,
)

__all__ = [
    "ParallelDriver",
    "ParallelFallback",
    "ShardRetried",
    "WorkerPool",
    "ChunkResult",
    "ClassifierSnapshot",
    "SnapshotPublisher",
    "SnapshotRef",
    "payload_from",
    "rebuild_classification",
    "snapshot_fingerprint",
    "wire_overhead",
]
