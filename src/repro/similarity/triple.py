"""Evaluation triples and the evaluation function ``E``.

Section 3.1: "The evaluation is represented by means of triples
``(p, m, c)`` in which ``p``, ``m``, ``c`` are the evaluation of plus,
minus, and common components, respectively.  Starting from these
triples, an evaluation function ``E`` [2] is then used for computing the
global and local similarity."

- *common* — structure present in both the document and the DTD;
- *plus*   — structure present in the document but not captured by the
  DTD (the paper's plus elements);
- *minus*  — structure the DTD requires but the document misses (the
  paper's minus elements).

``E(p, m, c) = c / (c + alpha*p + beta*m)``, with ``E(0, 0, 0) = 1``
(nothing required, nothing extra: a perfect match).  ``alpha`` and
``beta`` weight how much extra and missing structure hurt; both default
to 1 so that plus and minus components count like common ones, which
gives the properties the paper states (validity ⇔ similarity 1,
rank in ``[0, 1]``).

Triples combine *additively* while the matcher walks the two trees, so
the matcher maximises the linear score ``c - alpha*p - beta*m`` (which
has optimal substructure) and only converts to the ratio ``E`` at the
end.  Maximising the score also maximises ``E`` for fixed totals and
keeps the DP sound.
"""

from __future__ import annotations

from typing import NamedTuple


class SimilarityConfig(NamedTuple):
    """Tunable knobs of the similarity measure.

    Parameters
    ----------
    alpha:
        Weight of plus components (document structure the DTD misses).
    beta:
        Weight of minus components (DTD structure the document misses).
    max_depth:
        Recursion guard for pathological (cyclic) declaration chains.
    """

    alpha: float = 1.0
    beta: float = 1.0
    max_depth: int = 64


class EvalTriple(NamedTuple):
    """An additive (plus, minus, common) evaluation."""

    plus: float = 0.0
    minus: float = 0.0
    common: float = 0.0

    def __add__(self, other: "EvalTriple") -> "EvalTriple":  # type: ignore[override]
        return EvalTriple(
            self.plus + other.plus,
            self.minus + other.minus,
            self.common + other.common,
        )

    def add_plus(self, amount: float) -> "EvalTriple":
        return EvalTriple(self.plus + amount, self.minus, self.common)

    def add_minus(self, amount: float) -> "EvalTriple":
        return EvalTriple(self.plus, self.minus + amount, self.common)

    def add_common(self, amount: float) -> "EvalTriple":
        return EvalTriple(self.plus, self.minus, self.common + amount)

    def score(self, config: SimilarityConfig) -> float:
        """The linear objective the matcher maximises."""
        return self.common - config.alpha * self.plus - config.beta * self.minus

    def evaluate(self, config: SimilarityConfig) -> float:
        """The evaluation function ``E`` — a similarity in ``[0, 1]``."""
        denominator = (
            self.common + config.alpha * self.plus + config.beta * self.minus
        )
        if denominator <= 0:
            return 1.0
        return self.common / denominator

    @property
    def is_full(self) -> bool:
        """True when the match is perfect (no plus, no minus)."""
        return self.plus == 0 and self.minus == 0

    def __repr__(self) -> str:
        return f"(p={self.plus:g}, m={self.minus:g}, c={self.common:g})"


ZERO = EvalTriple()


def best(candidates, config: SimilarityConfig) -> EvalTriple:
    """The candidate triple with the highest linear score.

    Ties break toward the earliest candidate, which callers exploit to
    prefer structurally simpler alignments.
    """
    chosen = None
    chosen_score = float("-inf")
    for candidate in candidates:
        candidate_score = candidate.score(config)
        if candidate_score > chosen_score:
            chosen = candidate
            chosen_score = candidate_score
    if chosen is None:
        raise ValueError("best() requires at least one candidate")
    return chosen
