"""Structural similarity between XML documents and DTDs.

A faithful re-derivation of the algorithm of Bertino, Guerrini & Mesiti,
"Measuring the Structural Similarity among XML Documents and DTDs"
(technical report DISI-TR-02-02, reference [2] of the paper).  The
evolution paper relies on the following interface, which this package
provides:

- a numeric rank in ``[0, 1]`` for a document against a DTD
  (:func:`similarity`);
- evaluation triples ``(p, m, c)`` — *plus*, *minus*, *common*
  components — combined by the evaluation function
  :meth:`EvalTriple.evaluate`;
- *global* similarity (recursive; its fullness coincides with boolean
  validity) and *local* similarity (direct children only; drives the
  per-element granularity of the evolution process) — Section 3.1;
- per-element evaluations for every element of a document
  (:func:`evaluate_document`), consumed by the recording phase.
"""

from repro.similarity.triple import EvalTriple, SimilarityConfig
from repro.similarity.matcher import StructureMatcher
from repro.similarity.evaluation import (
    DocumentEvaluation,
    ElementEvaluation,
    evaluate_document,
    similarity,
    local_similarity,
    valid_document_evaluation,
)
from repro.similarity.tags import TagMatcher, ExactTagMatcher, ThesaurusTagMatcher

__all__ = [
    "EvalTriple",
    "SimilarityConfig",
    "StructureMatcher",
    "DocumentEvaluation",
    "ElementEvaluation",
    "evaluate_document",
    "similarity",
    "local_similarity",
    "valid_document_evaluation",
    "TagMatcher",
    "ExactTagMatcher",
    "ThesaurusTagMatcher",
]
