"""The structural matcher: documents against DTD content models.

This is the re-derivation of the algorithm of [2] the paper builds on
(Section 3.1): "the function visits at the same time the tree
representations of a document and a DTD associating with each node an
evaluation of plus, common and minus components between the two
structures at that level".

Formulation
-----------
For a document element ``e_d`` with tag ``t`` and a DTD declaring ``t``
with content model ``M``, the matcher computes the best *alignment* of
``e_d``'s child sequence against ``M`` — an assignment of children to
content-model positions maximising the linear score of the resulting
``(p, m, c)`` triple:

- a child matched to a model leaf of its tag contributes *common*
  (plus, recursively, the triple of its own content in *global* mode);
- a child no model position wants contributes *plus* (weighted by its
  subtree size in global mode, 1 in local mode);
- a required model part no child satisfies contributes *minus* (the
  size of its minimal instantiation).

The alignment is computed by dynamic programming over (model vertex,
child-span) pairs, with memoisation:

====================  ====================================================
model vertex          best triple over span ``items[lo:hi]``
====================  ====================================================
tag leaf ``x``        match one ``x`` child (others plus) or skip (minus)
``#PCDATA``           text children common, element children plus
``ANY``               everything common
``EMPTY``             everything plus
``AND``               partition the span among the parts (interval DP)
``OR``                best alternative on the whole span
``?``                 skip (span all plus, no minus) or match once
``*``/``+``           segment DP; ``+`` owes a minus if no segment matches
====================  ====================================================

Global vs local (Section 3.1): *global* recurses into matched children
(its fullness coincides with validity); *local* scores direct children
only, each worth 1 — this is the measure that drives per-element
recording and evolution granularity.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD
from repro.perf import FastPathConfig, PerfCounters
from repro.similarity.tags import ExactTagMatcher, TagMatcher
from repro.similarity.triple import EvalTriple, SimilarityConfig, best
from repro.xmltree.document import Element, Text
from repro.xmltree.tree import Tree

_TEXT_TAG = cm.PCDATA


class _Item:
    """One direct child of the document element being matched."""

    __slots__ = ("tag", "element", "weight")

    def __init__(self, tag: str, element: Optional[Element], weight: float):
        self.tag = tag
        self.element = element  # None for text items
        self.weight = weight

    @property
    def is_text(self) -> bool:
        return self.element is None


def subtree_weight(element: Element) -> float:
    """Size of an element subtree: element vertices + non-empty text leaves.

    This is the *plus* weight of an unmatched subtree in global mode —
    bigger unexpected structures hurt similarity more.
    """
    weight = 1.0
    for child in element.children:
        if isinstance(child, Element):
            weight += subtree_weight(child)
        elif isinstance(child, Text) and child.value.strip():
            weight += 1.0
    return weight


class StructureMatcher:
    """Matches document elements against the declarations of one DTD.

    A matcher instance caches per-element global evaluations and
    per-declaration minimal weights, so evaluating many documents
    against the same DTD amortises well (this is what the
    classification phase does).

    Parameters
    ----------
    dtd:
        The DTD to match against.
    config:
        Similarity weights (see :class:`SimilarityConfig`).
    tag_matcher:
        Tag equality policy; defaults to exact matching.  A thesaurus
        matcher (Section 6 extension) discounts synonym matches.
    fastpath:
        Fast-path switches (see :class:`repro.perf.FastPathConfig`).
        Only ``structural_cache`` matters at this layer: when on, DP
        results are interned by ``(declaration, mode, fingerprint)`` in
        an LRU that survives :meth:`clear_cache`, so identical subtrees
        across a document stream cost one DP run total.
    counters:
        Optional shared :class:`repro.perf.PerfCounters`; the matcher
        bumps cache-hit and DP counters into it.
    """

    def __init__(
        self,
        dtd: DTD,
        config: SimilarityConfig = SimilarityConfig(),
        tag_matcher: Optional[TagMatcher] = None,
        fastpath: Optional[FastPathConfig] = None,
        counters: Optional[PerfCounters] = None,
    ):
        self.dtd = dtd
        self.config = config
        self.tags = tag_matcher or ExactTagMatcher()
        self.fastpath = fastpath or FastPathConfig()
        self.counters = counters
        self._min_weight_cache: Dict[str, float] = {}
        # keyed by id(element); the element itself is kept as a strong
        # reference so a recycled id can never alias a freed element
        self._global_cache: Dict[int, Tuple[Element, EvalTriple]] = {}
        # tier 2: (decl name, mode, structural fingerprint) -> triple,
        # LRU-bounded; structural keys are value-based, so entries stay
        # correct across documents and across repository drains
        self._structural_cache: "OrderedDict[Tuple[str, str, bytes], EvalTriple]" = (
            OrderedDict()
        )
        # segment caps are a pure function of the model subtree; the
        # body tree is pinned alongside the cap so a GC'd-and-recycled
        # id can never alias (mirrors _global_cache's pinning)
        self._segment_cap_cache: Dict[int, Tuple[Tree, int]] = {}

    def clear_cache(self) -> None:
        """Drop per-element (identity-keyed) memoisation — call between
        unrelated documents when the structural cache is off.

        The fingerprint-keyed structural cache is *not* dropped: its
        keys are value-based and LRU-bounded, so it is both correct and
        memory-safe across documents (that persistence is the point of
        tier 2).  Use :meth:`clear_structural_cache` for a full reset.
        """
        self._global_cache.clear()

    def clear_structural_cache(self) -> None:
        """Drop the fingerprint-keyed LRU as well (tests, memory audits)."""
        self._structural_cache.clear()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def content_triple(self, element: Element, mode: str = "global") -> EvalTriple:
        """Triple for ``element``'s content against its tag's declaration.

        The element's own tag vertex is *not* included (callers add the
        common/plus/minus contribution of the tag itself); only the
        children alignment is scored.  ``mode`` is ``"global"`` or
        ``"local"``.

        Undeclared tags score as all-plus (the DTD captures nothing of
        the content).
        """
        decl_name = self._declared_name(element.tag)
        if decl_name is None:
            items = self._items(element, mode)
            return EvalTriple(plus=sum(item.weight for item in items))
        return self.triple_against(element, decl_name, mode)

    def triple_against(
        self, element: Element, decl_name: str, mode: str = "global", depth: int = 0
    ) -> EvalTriple:
        """Triple for ``element``'s content against declaration ``decl_name``.

        Lets callers match an element against a declaration other than
        its own tag's (the classifier uses it to anchor a document root
        onto the DTD root even when tags differ).
        """
        counters = self.counters
        # the id-keyed per-document cache is consulted *first* even with
        # the structural cache on: beyond max_depth the DP truncates, so
        # an element's triple depends on the depth of the first call for
        # it in this session (document_triple populates these at actual
        # tree depths; evaluate_document's depth-0 re-reads must see the
        # same values the legacy path serves)
        use_id_cache = mode == "global" and decl_name == element.tag
        if use_id_cache:
            cached = self._global_cache.get(id(element))
            if cached is not None and cached[0] is element:
                return cached[1]
        structural_key: Optional[Tuple[str, str, bytes]] = None
        if self.fastpath.structural_cache:
            info = element.structure_info()
            # local triples never recurse, so they are depth-free; global
            # triples are depth-free only while the max_depth recursion
            # guard cannot fire anywhere below this element — outside
            # that window the result depends on the depth it was
            # computed at and must not be shared
            if mode == "local" or depth + info.height < self.config.max_depth:
                structural_key = (decl_name, mode, info.fingerprint)
                cached_triple = self._structural_cache.get(structural_key)
                if cached_triple is not None:
                    self._structural_cache.move_to_end(structural_key)
                    if counters is not None:
                        counters.structural_cache_hits += 1
                    if use_id_cache:
                        self._global_cache[id(element)] = (element, cached_triple)
                    return cached_triple
                if counters is not None:
                    counters.structural_cache_misses += 1
        decl = self.dtd.get(decl_name)
        if decl is None:
            items = self._items(element, mode)
            return EvalTriple(plus=sum(item.weight for item in items))
        items = self._items(element, mode)
        if counters is not None:
            counters.dp_runs += 1
        triple = _SpanMatcher(self, items, mode, depth).match(
            decl.content, 0, len(items)
        )
        if structural_key is not None:
            self._structural_cache[structural_key] = triple
            if len(self._structural_cache) > self.fastpath.structural_cache_size:
                self._structural_cache.popitem(last=False)
                if counters is not None:
                    counters.structural_cache_evictions += 1
        if use_id_cache:
            self._global_cache[id(element)] = (element, triple)
        return triple

    def local_similarity(self, element: Element) -> float:
        """Local similarity of one document element (Section 3.1)."""
        return self.content_triple(element, "local").evaluate(self.config)

    def global_similarity(self, element: Element) -> float:
        """Global similarity of one document element's content."""
        return self.content_triple(element, "global").evaluate(self.config)

    def document_triple(self, root: Element) -> EvalTriple:
        """Triple for a whole document anchored at the DTD root.

        The root tag contributes common 1 when it matches the DTD root
        (possibly discounted by the tag matcher), otherwise plus 1 and
        minus 1; the root's content is matched against the DTD root's
        declaration either way, so structurally identical documents
        with a renamed root still rank high.
        """
        factor = self.tags.match(root.tag, self.dtd.root)
        content = self.triple_against(root, self.dtd.root, "global")
        if factor > 0:
            return content.add_common(factor)
        return content.add_plus(1.0).add_minus(1.0)

    def document_similarity(self, root: Element) -> float:
        """Similarity rank in [0, 1] of a document against the DTD."""
        return self.document_triple(root).evaluate(self.config)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _declared_name(self, tag: str) -> Optional[str]:
        """The declaration a tag matches, honouring the tag matcher."""
        if tag in self.dtd:
            return tag
        if isinstance(self.tags, ExactTagMatcher):
            return None
        candidates = [
            name for name in self.dtd.element_names() if self.tags.matches(tag, name)
        ]
        return candidates[0] if candidates else None

    def _items(self, element: Element, mode: str) -> List[_Item]:
        # structure_info().weight equals subtree_weight() exactly (both
        # sum the same integers); the cached form is O(1) amortised
        use_cached_weight = self.fastpath.structural_cache
        items: List[_Item] = []
        for child in element.children:
            if isinstance(child, Element):
                if mode != "global":
                    weight = 1.0
                elif use_cached_weight:
                    weight = child.structure_info().weight
                else:
                    weight = subtree_weight(child)
                items.append(_Item(child.tag, child, weight))
            elif child.value.strip():
                items.append(_Item(_TEXT_TAG, None, 1.0))
        return items

    def _min_weight(self, tag: str, open_tags: Tuple[str, ...] = ()) -> float:
        """Minus cost of a missing required element: its minimal instance size."""
        if tag in self._min_weight_cache:
            return self._min_weight_cache[tag]
        decl = self.dtd.get(tag)
        if decl is None or tag in open_tags:
            return 1.0
        weight = 1.0 + self._min_model_weight(decl.content, open_tags + (tag,))
        if not open_tags:
            # only cache context-free values: inside a recursion the
            # cycle guard can truncate the weight, and caching that
            # would make results depend on evaluation order
            self._min_weight_cache[tag] = weight
        return weight

    def _min_model_weight(self, model: Tree, open_tags: Tuple[str, ...]) -> float:
        label = model.label
        if label in (cm.PCDATA, cm.ANY, cm.EMPTY):
            return 0.0
        if cm.is_element_label(label):
            return self._min_weight(label, open_tags)
        if label == cm.AND:
            return sum(
                self._min_model_weight(child, open_tags) for child in model.children
            )
        if label == cm.OR:
            return min(
                self._min_model_weight(child, open_tags) for child in model.children
            )
        if label in (cm.OPT, cm.STAR):
            return 0.0
        if label == cm.PLUS:
            return self._min_model_weight(model.children[0], open_tags)
        raise ValueError(f"unknown content-model label {label!r}")

    def _child_match_triple(self, item: _Item, mode: str, depth: int) -> EvalTriple:
        """Triple for matching an element item to a leaf of its tag."""
        if mode == "local" or depth >= self.config.max_depth:
            return EvalTriple(common=1.0)
        assert item.element is not None
        decl_name = self._declared_name(item.element.tag)
        if decl_name is None:
            sub = EvalTriple(
                plus=sum(i.weight for i in self._items(item.element, "global"))
            )
        else:
            sub = self.triple_against(item.element, decl_name, "global", depth + 1)
        return sub.add_common(1.0)


class _SpanMatcher:
    """One DP run: a fixed item list, mode, and memo table."""

    def __init__(self, owner: StructureMatcher, items: List[_Item], mode: str, depth: int):
        self.owner = owner
        self.items = items
        self.mode = mode
        self.depth = depth
        self.config = owner.config
        # memo values pin the model vertex they were computed for, so a
        # recycled id can never alias a collected tree (mirrors the
        # owner's _global_cache pinning)
        self._memo: Dict[Tuple[int, int, int], Tuple[Tree, EvalTriple]] = {}
        # prefix sums of item weights for O(1) span-plus costs
        self._prefix = [0.0]
        for item in items:
            self._prefix.append(self._prefix[-1] + item.weight)

    # -- helpers -------------------------------------------------------

    def _span_plus(self, lo: int, hi: int) -> EvalTriple:
        return EvalTriple(plus=self._prefix[hi] - self._prefix[lo])

    def _min_minus(self, model: Tree) -> float:
        if self.mode == "local":
            # each missing required direct element costs exactly 1
            return _local_min_weight(model)
        return self.owner._min_model_weight(model, ())

    def _segment_cap(self, body: Tree) -> int:
        """Longest segment one body repetition may be offered.

        A repetition of a *bounded* body (no ``*``/``+`` inside) can
        match at most ``maxlen(body)`` items; extras interleaved within
        a repetition cost the same as extras between repetitions unless
        they sit strictly between matched items, so a window of
        ``3 * maxlen + 4`` preserves optimality except for adversarial
        runs of > 2·maxlen foreign items *inside* one repetition — in
        which case the computed similarity is a (slightly low) valid
        alignment score.  Unbounded bodies get no cap.  This turns the
        repetition DP from O(n^2) segments into O(n·cap) on the wide,
        flat elements real documents have.

        The cap is a pure function of the model subtree, so it is
        cached on the owner (shared across DP runs) with the body tree
        pinned against id recycling.
        """
        cache = self.owner._segment_cap_cache
        cached = cache.get(id(body))
        if cached is not None and cached[0] is body:
            return cached[1]
        max_length = _max_word_length(body)
        cap = (1 << 30) if max_length is None else 3 * max_length + 4
        cache[id(body)] = (body, cap)
        return cap

    # -- the DP --------------------------------------------------------

    def match(self, model: Tree, lo: int, hi: int) -> EvalTriple:
        key = (id(model), lo, hi)
        cached = self._memo.get(key)
        if cached is not None and cached[0] is model:
            return cached[1]
        result = self._compute(model, lo, hi)
        self._memo[key] = (model, result)
        counters = self.owner.counters
        if counters is not None:
            counters.dp_cells += 1
        return result

    def _compute(self, model: Tree, lo: int, hi: int) -> EvalTriple:
        label = model.label

        if label == cm.ANY:
            return EvalTriple(common=self._prefix[hi] - self._prefix[lo])
        if label == cm.EMPTY:
            return self._span_plus(lo, hi)
        if label == cm.PCDATA:
            triple = EvalTriple()
            for index in range(lo, hi):
                item = self.items[index]
                if item.is_text:
                    triple = triple.add_common(1.0)
                else:
                    triple = triple.add_plus(item.weight)
            return triple
        if cm.is_element_label(label):
            return self._match_leaf(label, lo, hi)
        if label == cm.AND:
            return self._match_sequence(model.children, lo, hi)
        if label == cm.OR:
            return best(
                (self.match(child, lo, hi) for child in model.children), self.config
            )
        if label == cm.OPT:
            skip = self._span_plus(lo, hi)
            taken = self.match(model.children[0], lo, hi)
            return best((skip, taken), self.config)
        if label in (cm.STAR, cm.PLUS):
            return self._match_repetition(model.children[0], lo, hi, label == cm.PLUS)
        raise ValueError(f"unknown content-model label {label!r}")

    def _match_leaf(self, tag: str, lo: int, hi: int) -> EvalTriple:
        candidates = [
            self._span_plus(lo, hi).add_minus(
                self.owner._min_weight(tag) if self.mode == "global" else 1.0
            )
        ]
        for index in range(lo, hi):
            item = self.items[index]
            if item.is_text:
                continue
            factor = self.owner.tags.match(item.tag, tag)
            if factor <= 0:
                continue
            matched = self.owner._child_match_triple(item, self.mode, self.depth)
            if factor < 1.0:
                matched = EvalTriple(
                    matched.plus, matched.minus, matched.common * factor
                )
            candidates.append(
                matched
                + self._span_plus(lo, index)
                + self._span_plus(index + 1, hi)
            )
        return best(candidates, self.config)

    def _match_sequence(self, parts: Sequence[Tree], lo: int, hi: int) -> EvalTriple:
        """Interval DP: partition items[lo:hi] among the sequence parts."""
        # dp[p] = best triple matching the parts seen so far to items[lo:p]
        dp: List[Optional[EvalTriple]] = [None] * (hi + 1)
        dp[lo] = EvalTriple()
        for part in parts:
            next_dp: List[Optional[EvalTriple]] = [None] * (hi + 1)
            for split in range(lo, hi + 1):
                base = dp[split]
                if base is None:
                    continue
                for end in range(split, hi + 1):
                    candidate = base + self.match(part, split, end)
                    current = next_dp[end]
                    if current is None or candidate.score(self.config) > current.score(
                        self.config
                    ):
                        next_dp[end] = candidate
            dp = next_dp
        result = dp[hi]
        assert result is not None  # every part can match an empty span
        return result

    def _match_repetition(
        self, body: Tree, lo: int, hi: int, require_one: bool
    ) -> EvalTriple:
        """Segment DP for ``*`` and ``+``.

        ``none[p]``/``some[p]`` are the best triples covering
        ``items[lo:p]`` with zero / at least one body repetition;
        between repetitions, individual items may be skipped as plus.
        """
        none: List[EvalTriple] = [EvalTriple()] * (hi - lo + 1)
        some: List[Optional[EvalTriple]] = [None] * (hi - lo + 1)
        cap = self._segment_cap(body)
        for offset in range(1, hi - lo + 1):
            position = lo + offset
            item_plus = EvalTriple(plus=self.items[position - 1].weight)
            none[offset] = none[offset - 1] + item_plus
            candidates: List[EvalTriple] = []
            if some[offset - 1] is not None:
                candidates.append(some[offset - 1] + item_plus)
            for start_offset in range(max(0, offset - cap), offset):
                segment = self.match(body, lo + start_offset, position)
                candidates.append(none[start_offset] + segment)
                if some[start_offset] is not None:
                    candidates.append(some[start_offset] + segment)
            some[offset] = best(candidates, self.config) if candidates else None
        # the empty span can also host one (empty) repetition
        empty_repetition = self.match(body, lo, lo) if hi == lo else None
        final_candidates: List[EvalTriple] = []
        if some[hi - lo] is not None:
            final_candidates.append(some[hi - lo])  # type: ignore[arg-type]
        if require_one:
            penalty = EvalTriple(minus=self._min_minus(body))
            final_candidates.append(none[hi - lo] + penalty)
            if empty_repetition is not None:
                final_candidates.append(empty_repetition)
        else:
            final_candidates.append(none[hi - lo])
        return best(final_candidates, self.config)


def _max_word_length(model: Tree) -> Optional[int]:
    """Longest word of a content model, or ``None`` when unbounded."""
    label = model.label
    if label in (cm.PCDATA, cm.ANY, cm.EMPTY):
        return 0
    if cm.is_element_label(label):
        return 1
    if label in (cm.STAR, cm.PLUS):
        inner = _max_word_length(model.children[0])
        return 0 if inner == 0 else None
    if label == cm.OPT:
        return _max_word_length(model.children[0])
    lengths = [_max_word_length(child) for child in model.children]
    if any(length is None for length in lengths):
        return None
    if label == cm.AND:
        return sum(lengths)  # type: ignore[arg-type]
    return max(lengths)  # type: ignore[arg-type,type-var]


def _local_min_weight(model: Tree) -> float:
    """Minimal number of required direct children of a model (local mode)."""
    label = model.label
    if label in (cm.PCDATA, cm.ANY, cm.EMPTY):
        return 0.0
    if cm.is_element_label(label):
        return 1.0
    if label == cm.AND:
        return sum(_local_min_weight(child) for child in model.children)
    if label == cm.OR:
        return min(_local_min_weight(child) for child in model.children)
    if label in (cm.OPT, cm.STAR):
        return 0.0
    if label == cm.PLUS:
        return _local_min_weight(model.children[0])
    raise ValueError(f"unknown content-model label {label!r}")
