"""Tag matching — exact by default, thesaurus-based as an extension.

Section 6 lists as a future direction "the possibility of evolving tag
names as well as their structure by relying on the use of a Thesaurus
[5].  The Thesaurus allows one to evaluate structural similarity
shifting from tag equality to tag similarity, as sketched in [2]."

The paper's setting assumed WordNet; in this offline reproduction the
same hook is provided by :class:`ThesaurusTagMatcher`, driven by an
explicit synonym table (sets of interchangeable tags with a similarity
discount).  The matcher consults a :class:`TagMatcher` everywhere tag
equality is needed, so swapping in a thesaurus changes classification
behaviour without touching the algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set


class TagMatcher:
    """Interface: decides whether/how well two tags match.

    :meth:`match` returns a similarity factor in ``[0, 1]``:
    ``1.0`` for a perfect match, ``0.0`` for no match.  The structural
    matcher multiplies the *common* contribution of a matched element by
    this factor, so synonym matches rank below exact ones.
    """

    def match(self, document_tag: str, dtd_tag: str) -> float:
        raise NotImplementedError

    def matches(self, document_tag: str, dtd_tag: str) -> bool:
        """True when the factor is positive."""
        return self.match(document_tag, dtd_tag) > 0.0


class ExactTagMatcher(TagMatcher):
    """Strict tag equality — the paper's default behaviour."""

    def match(self, document_tag: str, dtd_tag: str) -> float:
        return 1.0 if document_tag == dtd_tag else 0.0


class ThesaurusTagMatcher(TagMatcher):
    """Synonym-aware matching (the Section 6 extension).

    Parameters
    ----------
    synonym_sets:
        An iterable of tag groups; tags within a group are considered
        synonyms of each other.
    synonym_factor:
        The similarity factor granted to a synonym (non-identical)
        match.  Must lie in ``(0, 1]``; exact matches always score 1.

    >>> matcher = ThesaurusTagMatcher([{"author", "writer"}], 0.8)
    >>> matcher.match("writer", "author")
    0.8
    >>> matcher.match("author", "author")
    1.0
    """

    def __init__(self, synonym_sets: Iterable[Set[str]], synonym_factor: float = 0.8):
        if not 0.0 < synonym_factor <= 1.0:
            raise ValueError("synonym_factor must be in (0, 1]")
        self.synonym_factor = synonym_factor
        self._group_of: Dict[str, int] = {}
        for index, group in enumerate(synonym_sets):
            for tag in group:
                self._group_of[tag] = index

    def match(self, document_tag: str, dtd_tag: str) -> float:
        if document_tag == dtd_tag:
            return 1.0
        document_group = self._group_of.get(document_tag)
        if document_group is None:
            return 0.0
        if document_group == self._group_of.get(dtd_tag):
            return self.synonym_factor
        return 0.0

    def canonical(self, tag: str) -> str:
        """A deterministic representative of the tag's synonym group.

        Used by the tag-evolution extension to rename drifting tags to a
        single canonical form.
        """
        group = self._group_of.get(tag)
        if group is None:
            return tag
        members = sorted(
            candidate
            for candidate, candidate_group in self._group_of.items()
            if candidate_group == group
        )
        return members[0]
