"""Document-level evaluation: the public face of the similarity layer.

The evolution pipeline needs, per document (Sections 2 and 3):

1. a *document similarity* against each DTD of the source (drives
   classification, threshold ``sigma``);
2. for the selected DTD, a *per-element* evaluation — the local and
   global similarity of every element whose tag the DTD declares —
   which is exactly what the recording phase stores into the extended
   DTD (an element is "non valid" when its local similarity is not
   full).

:func:`evaluate_document` computes both in one pass and returns a
:class:`DocumentEvaluation`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dtd.dtd import DTD
from repro.similarity.matcher import StructureMatcher
from repro.similarity.tags import TagMatcher
from repro.similarity.triple import EvalTriple, SimilarityConfig
from repro.xmltree.document import Document, Element


class ElementEvaluation:
    """Similarity of one document element against its tag's declaration."""

    __slots__ = ("element", "declared", "local_triple", "global_triple", "config")

    def __init__(
        self,
        element: Element,
        declared: bool,
        local_triple: EvalTriple,
        global_triple: EvalTriple,
        config: SimilarityConfig,
    ):
        self.element = element
        #: whether the DTD declares this element's tag at all
        self.declared = declared
        self.local_triple = local_triple
        self.global_triple = global_triple
        self.config = config

    @property
    def local_similarity(self) -> float:
        return self.local_triple.evaluate(self.config)

    @property
    def global_similarity(self) -> float:
        return self.global_triple.evaluate(self.config)

    @property
    def is_locally_valid(self) -> bool:
        """Full local similarity — the paper's per-element validity notion."""
        return self.declared and self.local_triple.is_full

    def __repr__(self) -> str:
        return (
            f"ElementEvaluation({self.element.tag!r}, "
            f"local={self.local_similarity:.3f}, "
            f"global={self.global_similarity:.3f})"
        )


class DocumentEvaluation:
    """Similarity of a whole document against one DTD."""

    def __init__(
        self,
        document: Document,
        dtd: DTD,
        triple: EvalTriple,
        elements: List[ElementEvaluation],
        config: SimilarityConfig,
    ):
        self.document = document
        self.dtd = dtd
        self.triple = triple
        self.elements = elements
        self.config = config

    @property
    def similarity(self) -> float:
        """The numeric rank in [0, 1] used by the classifier."""
        return self.triple.evaluate(self.config)

    @property
    def element_count(self) -> int:
        return len(self.elements)

    @property
    def invalid_element_count(self) -> int:
        """Number of elements whose local similarity is not full."""
        return sum(
            1 for evaluation in self.elements if not evaluation.is_locally_valid
        )

    @property
    def invalid_element_fraction(self) -> float:
        """The per-document term of the paper's activation condition."""
        if not self.elements:
            return 0.0
        return self.invalid_element_count / len(self.elements)

    @property
    def is_valid(self) -> bool:
        """Full global similarity at the root ⇔ boolean validity."""
        return self.triple.is_full

    def __repr__(self) -> str:
        return (
            f"DocumentEvaluation(dtd={self.dtd.name!r}, "
            f"similarity={self.similarity:.3f}, "
            f"invalid={self.invalid_element_count}/{self.element_count})"
        )


def evaluate_document(
    document: Document,
    dtd: DTD,
    config: SimilarityConfig = SimilarityConfig(),
    matcher: Optional[StructureMatcher] = None,
    tag_matcher: Optional[TagMatcher] = None,
) -> DocumentEvaluation:
    """Evaluate a document against a DTD, globally and per element.

    Pass a pre-built ``matcher`` to reuse its declaration-level caches
    across many documents (the classifier does).

    >>> from repro.dtd.parser import parse_dtd
    >>> from repro.xmltree.parser import parse_document
    >>> dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>")
    >>> evaluate_document(parse_document("<a><b>x</b></a>"), dtd).is_valid
    True
    """
    if matcher is None:
        matcher = StructureMatcher(dtd, config, tag_matcher)
    else:
        matcher.clear_cache()
    document_triple = matcher.document_triple(document.root)
    evaluations: List[ElementEvaluation] = []
    for element in document.root.iter_elements():
        declared = element.tag in dtd
        local_triple = matcher.content_triple(element, "local")
        global_triple = matcher.content_triple(element, "global")
        if not declared:
            # an undeclared element is entirely uncaptured structure
            local_triple = local_triple.add_plus(1.0)
            global_triple = global_triple.add_plus(1.0)
        evaluations.append(
            ElementEvaluation(element, declared, local_triple, global_triple, config)
        )
    matcher.clear_cache()
    return DocumentEvaluation(document, dtd, document_triple, evaluations, config)


def valid_document_evaluation(
    document: Document,
    dtd: DTD,
    config: SimilarityConfig = SimilarityConfig(),
) -> DocumentEvaluation:
    """Synthesize the evaluation of a document *known to be valid*.

    Section 3.1: for the global measure, fullness coincides with
    validity — a valid document's optimal alignment matches every
    vertex, so every triple is all-common and no span DP is needed.
    For a valid document this returns values bit-identical to
    :func:`evaluate_document` (asserted in ``tests/test_fastpath.py``):

    - document triple: ``(0, 0, W)`` where ``W`` is the subtree weight
      (element vertices + non-whitespace text leaves) — the root's tag
      vertex is common, and recursively so is all content;
    - per element: local triple ``(0, 0, n)`` with ``n`` its direct
      item count, global triple ``(0, 0, w - 1)`` with ``w`` its
      subtree weight (the element's own vertex excluded, as
      :meth:`StructureMatcher.content_triple` does).

    Callers must guarantee validity (``Validator.is_valid``), an exact
    tag matcher, positive ``alpha``/``beta`` (a zero weight lets the DP
    tie-break onto non-all-common optima), and a document shallower
    than ``config.max_depth`` (beyond it the DP truncates recursion and
    its common totals shrink).  The classifier's tier-1 fast path
    checks all four.
    """
    evaluations: List[ElementEvaluation] = []
    for element in document.root.iter_elements():
        items = 0
        for child in element.children:
            if isinstance(child, Element) or child.value.strip():
                items += 1
        local_triple = EvalTriple(common=float(items))
        global_triple = EvalTriple(common=element.structure_info().weight - 1.0)
        evaluations.append(
            ElementEvaluation(element, True, local_triple, global_triple, config)
        )
    document_triple = EvalTriple(common=document.root.structure_info().weight)
    return DocumentEvaluation(document, dtd, document_triple, evaluations, config)


def similarity(
    document: Document, dtd: DTD, config: SimilarityConfig = SimilarityConfig()
) -> float:
    """Document-against-DTD similarity rank in ``[0, 1]``."""
    return StructureMatcher(dtd, config).document_similarity(document.root)


def local_similarity(
    element: Element, dtd: DTD, config: SimilarityConfig = SimilarityConfig()
) -> float:
    """Local similarity of one element (Section 3.1)."""
    return StructureMatcher(dtd, config).local_similarity(element)


def similarity_map(
    document: Document,
    dtd: DTD,
    config: SimilarityConfig = SimilarityConfig(),
) -> Dict[int, ElementEvaluation]:
    """Per-element evaluations keyed by ``id(element)`` (recorder input)."""
    evaluation = evaluate_document(document, dtd, config)
    return {id(entry.element): entry for entry in evaluation.elements}
