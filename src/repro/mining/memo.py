"""Mined-rule memoization (the evolution-phase analogue of the
classifier's structural interning cache).

The evolution phase mines association rules per element from the
element's transaction multiset (the recorded sequences).  Across
elements, DTDs and successive evolutions the same evidence recurs —
steady streams re-accumulate identical multisets between evolutions,
and sibling elements often share shapes — so
:class:`MinedRuleMemo` keys the complete
:func:`repro.mining.rules.mine_evolution_rules` output (a
:class:`~repro.mining.rules.RuleSet`) by a fingerprint of the
transaction multiset, the label list, and the support threshold ``mu``.

Sharing cached :class:`RuleSet` instances is safe because a rule set is
immutable after construction: every query reads the index built by
``_build()`` and nothing mutates it afterwards.  The memo is an LRU
bounded by ``max_entries`` (mirroring the tier-2 structural cache in
:class:`repro.similarity.matcher.StructureMatcher`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.mining.rules import RuleSet, mine_evolution_rules

#: default LRU capacity — rule sets are small (single-literal index
#: over the element's labels), so this is generous
DEFAULT_MAX_ENTRIES = 256


class MinedRuleMemo:
    """An LRU memo over :func:`mine_evolution_rules`.

    One instance is shared engine-wide (all DTDs, all evolutions); the
    engine builds it when ``FastPathConfig.mined_rule_cache`` is on and
    threads it through ``evolve_dtd`` into the structure builder.
    """

    __slots__ = ("max_entries", "_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, RuleSet]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(record, labels, min_support: float) -> Tuple:
        """The memo key: transaction-multiset fingerprint + parameters.

        ``record`` needs only a ``sequences`` counter (both
        :class:`~repro.core.extended_dtd.ElementRecord` and its nested
        plus records qualify).  The label list keeps its order — the
        mining output is order-independent, but keying conservatively
        never costs correctness, only a duplicate entry.
        """
        transactions = tuple(
            sorted(
                (tuple(sorted(sequence)), count)
                for sequence, count in record.sequences.items()
            )
        )
        return (transactions, tuple(labels), min_support)

    def mine(self, record, labels, min_support: float, counters=None) -> RuleSet:
        """Return the rules for ``record``, mining only on a memo miss."""
        key = self.key_for(record, labels, min_support)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if counters is not None:
                counters.mined_rule_hits += 1
            return cached
        rules = mine_evolution_rules(record.sequence_list(), labels, min_support)
        self._entries[key] = rules
        self.misses += 1
        if counters is not None:
            counters.mined_rule_misses += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return rules

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"MinedRuleMemo(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
