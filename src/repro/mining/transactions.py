"""Transactions over presence/absence literals.

Section 4.2: "items are element tags and the set of sequences is the one
associated with element e".  A *sequence* (recorded during the recording
phase) is the set of direct-subelement tags of one non-valid instance,
"disregarding order and repetitions".

The paper then augments each sequence with *absent elements*
(Example 4): given the label universe ``Label`` collected for the DTD
element, every label missing from a sequence is added as a negated
literal, so rules of the form "the absence of b implies the presence of
c" become minable — these are what identify OR-bound subelements.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Sequence, Tuple

from repro.errors import MiningError


class Literal(NamedTuple):
    """A presence (``b``) or absence (``¬b``) assertion about a tag."""

    label: str
    is_present: bool = True

    def negate(self) -> "Literal":
        return Literal(self.label, not self.is_present)

    def __repr__(self) -> str:
        return self.label if self.is_present else f"¬{self.label}"


def present(label: str) -> Literal:
    """The positive literal for ``label``."""
    return Literal(label, True)


def absent(label: str) -> Literal:
    """The negative literal for ``label`` (the paper's ``b̄``)."""
    return Literal(label, False)


Transaction = FrozenSet[Literal]


def augment_with_absent(
    sequences: Iterable[FrozenSet[str]], labels: Iterable[str]
) -> List[Transaction]:
    """Step 1 of the evolution algorithm (Section 4.2).

    Turn each tag-set sequence into a *total* transaction over the label
    universe: present tags become positive literals, missing tags
    negative ones.

    >>> transactions = augment_with_absent(
    ...     [frozenset({"a", "b"})], ["a", "b", "c"]
    ... )
    >>> sorted(map(repr, transactions[0]))
    ['a', 'b', '¬c']
    """
    universe = sorted(set(labels))
    transactions: List[Transaction] = []
    for sequence in sequences:
        stray = set(sequence) - set(universe)
        if stray:
            raise MiningError(
                f"sequence contains labels outside the universe: {sorted(stray)}"
            )
        transactions.append(
            frozenset(
                present(label) if label in sequence else absent(label)
                for label in universe
            )
        )
    return transactions


def filter_frequent_sequences(
    transactions: Sequence[Transaction], min_support: float
) -> List[Transaction]:
    """Step 2: keep the most frequent sequences, with multiplicity.

    A sequence's support is the fraction of transactions equal to it
    (augmented transactions are total over the universe, so containment
    and equality coincide).  Sequences at or below ``min_support`` "are
    discarded since they are not representative enough".

    The result preserves multiplicities — rule confidences must still be
    computed on the surviving population, not on distinct shapes.
    """
    if not 0.0 <= min_support <= 1.0:
        raise MiningError(f"min_support must be in [0, 1], got {min_support}")
    if not transactions:
        return []
    counts = Counter(transactions)
    total = len(transactions)
    kept: List[Transaction] = []
    for transaction in transactions:
        if counts[transaction] / total > min_support:
            kept.append(transaction)
    return kept


def sequence_supports(
    transactions: Sequence[Transaction],
) -> Dict[Transaction, float]:
    """Support of each distinct transaction shape (diagnostics/benchmarks)."""
    counts = Counter(transactions)
    total = len(transactions) or 1
    return {shape: count / total for shape, count in counts.items()}


def positive_labels(transaction: Transaction) -> Tuple[str, ...]:
    """The tags asserted present by a transaction, sorted."""
    return tuple(
        sorted(literal.label for literal in transaction if literal.is_present)
    )
