"""Apriori frequent-itemset mining.

The classic level-wise algorithm (Agrawal & Srikant; the paper cites the
Han & Kamber textbook [4]): frequent 1-itemsets seed candidate
2-itemsets, and so on, pruning candidates with an infrequent subset
(downward closure).  Items are arbitrary hashables — the evolution layer
uses :class:`~repro.mining.transactions.Literal` values.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.errors import MiningError

Item = Hashable
Itemset = FrozenSet[Item]


def itemset_support(
    itemset: Iterable[Item], transactions: Sequence[FrozenSet[Item]]
) -> float:
    """Fraction of transactions containing every item of ``itemset``.

    Example 3 of the paper:

    >>> S = [frozenset("abc"), frozenset("ab"), frozenset("bcd")]
    >>> round(itemset_support(frozenset("abc"), S), 4)
    0.3333
    """
    if not transactions:
        return 0.0
    target = frozenset(itemset)
    hits = sum(1 for transaction in transactions if target <= transaction)
    return hits / len(transactions)


def _candidate_join(
    previous_level: List[Itemset], size: int
) -> Set[Itemset]:
    """Join step: unite pairs from the previous level differing by one item."""
    candidates: Set[Itemset] = set()
    previous_set = set(previous_level)
    ordered = sorted(previous_level, key=lambda itemset: sorted(map(repr, itemset)))
    for index, left in enumerate(ordered):
        for right in ordered[index + 1 :]:
            union = left | right
            if len(union) != size:
                continue
            # prune: every (size-1)-subset must be frequent
            if all(union - {item} in previous_set for item in union):
                candidates.add(union)
    return candidates


def apriori(
    transactions: Sequence[FrozenSet[Item]],
    min_support: float,
    max_size: Optional[int] = None,
) -> Dict[Itemset, int]:
    """Mine all frequent itemsets with support >= ``min_support``.

    Returns absolute counts keyed by itemset (support = count / number
    of transactions).  ``max_size`` bounds the itemset cardinality —
    useful because evolution transactions are *total* over the label
    universe, so unbounded mining would always surface the full
    transactions themselves.

    >>> S = [frozenset("abc"), frozenset("ab"), frozenset("bcd")]
    >>> counts = apriori(S, min_support=2/3)
    >>> sorted("".join(sorted(k)) for k in counts)
    ['a', 'ab', 'b', 'bc', 'c']
    """
    if not 0.0 <= min_support <= 1.0:
        raise MiningError(f"min_support must be in [0, 1], got {min_support}")
    total = len(transactions)
    if total == 0:
        return {}
    min_count = _min_count(min_support, total)

    frequent: Dict[Itemset, int] = {}
    singles: Counter = Counter()
    for transaction in transactions:
        for item in transaction:
            singles[item] += 1
    level: List[Itemset] = []
    for item, count in singles.items():
        if count >= min_count:
            itemset = frozenset({item})
            frequent[itemset] = count
            level.append(itemset)

    size = 2
    while level and (max_size is None or size <= max_size):
        candidates = _candidate_join(level, size)
        if not candidates:
            break
        counts: Dict[Itemset, int] = defaultdict(int)
        for transaction in transactions:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        level = []
        for candidate, count in counts.items():
            if count >= min_count:
                frequent[candidate] = count
                level.append(candidate)
        size += 1
    return frequent


def _min_count(min_support: float, total: int) -> int:
    """Smallest absolute count whose support reaches ``min_support``."""
    import math

    return max(1, math.ceil(min_support * total - 1e-9))


def maximal_itemsets(frequent: Dict[Itemset, int]) -> List[Itemset]:
    """The frequent itemsets with no frequent superset (reporting helper)."""
    itemsets = sorted(frequent, key=len, reverse=True)
    maximal: List[Itemset] = []
    for candidate in itemsets:
        if not any(candidate < chosen for chosen in maximal):
            maximal.append(candidate)
    return maximal


def frequent_by_size(frequent: Dict[Itemset, int]) -> Dict[int, List[Itemset]]:
    """Group frequent itemsets by cardinality (reporting helper)."""
    grouped: Dict[int, List[Itemset]] = defaultdict(list)
    for itemset in frequent:
        grouped[len(itemset)].append(itemset)
    return dict(grouped)
