"""Association-rule mining (Section 4.2 substrate).

The evolution phase "is based on the use of data mining association
rules [4] to find out frequent structural patterns in documents".  This
package implements that substrate from scratch:

- :mod:`repro.mining.transactions` — presence/absence literals and the
  paper's *absent element* augmentation (Example 4);
- :mod:`repro.mining.itemsets` — Apriori frequent-itemset mining;
- :mod:`repro.mining.rules` — association rules with support and
  confidence (Example 3), rule generation, the :class:`RuleSet` the
  heuristic policies query, and the end-to-end
  :func:`mine_evolution_rules` pipeline (steps 1–4 of Section 4.2);
- :mod:`repro.mining.memo` — the :class:`MinedRuleMemo` LRU sharing
  mined rule sets across elements, DTDs and evolutions (keyed by the
  transaction-multiset fingerprint and ``mu``).
"""

from repro.mining.memo import MinedRuleMemo

from repro.mining.transactions import (
    Literal,
    present,
    absent,
    augment_with_absent,
    filter_frequent_sequences,
)
from repro.mining.itemsets import apriori, itemset_support
from repro.mining.fpgrowth import fpgrowth
from repro.mining.rules import (
    AssociationRule,
    RuleSet,
    generate_rules,
    mine_evolution_rules,
)

__all__ = [
    "Literal",
    "present",
    "absent",
    "augment_with_absent",
    "filter_frequent_sequences",
    "apriori",
    "fpgrowth",
    "itemset_support",
    "AssociationRule",
    "RuleSet",
    "generate_rules",
    "mine_evolution_rules",
    "MinedRuleMemo",
]
