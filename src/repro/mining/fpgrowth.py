"""FP-Growth frequent-itemset mining.

An alternative to :func:`repro.mining.itemsets.apriori` from the same
textbook the paper cites (Han & Kamber [4], whose authors introduced
FP-Growth): transactions are compressed into a prefix tree (the
*FP-tree*) whose paths share common prefixes, and frequent itemsets are
mined by recursively projecting conditional trees — no candidate
generation, one database scan per projection.

Produces exactly the same ``{itemset: count}`` mapping as Apriori
(property-tested); the mining benchmark (E9) compares their costs: the
FP-tree wins when transactions share structure (which absence-augmented
evolution transactions do — they are total over the label universe).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import MiningError
from repro.mining.itemsets import Itemset, _min_count

Item = Hashable


class _Node:
    """One FP-tree vertex: an item, its count, children by item."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: Optional[Item], parent: Optional["_Node"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[Item, "_Node"] = {}


class _FPTree:
    """A prefix tree over frequency-ordered transactions."""

    def __init__(self):
        self.root = _Node(None, None)
        #: item -> list of nodes carrying it (the header table)
        self.header: Dict[Item, List[_Node]] = defaultdict(list)

    def insert(self, items: Sequence[Item], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                self.header[item].append(child)
            child.count += count
            node = child

    def prefix_paths(self, item: Item) -> List[Tuple[List[Item], int]]:
        """Conditional pattern base: the path above each item node."""
        paths: List[Tuple[List[Item], int]] = []
        for node in self.header[item]:
            path: List[Item] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            path.reverse()
            paths.append((path, node.count))
        return paths

    def is_single_path(self) -> Optional[List[Tuple[Item, int]]]:
        """The (item, count) chain if the tree is one path, else None."""
        chain: List[Tuple[Item, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            chain.append((node.item, node.count))
        return chain


def _build_tree(
    weighted_transactions: Sequence[Tuple[Sequence[Item], int]],
    min_count: int,
) -> Tuple[_FPTree, Dict[Item, int]]:
    supports: Counter = Counter()
    for items, count in weighted_transactions:
        for item in set(items):
            supports[item] += count
    frequent_items = {
        item: count for item, count in supports.items() if count >= min_count
    }
    # order by descending support, repr-tiebreak for determinism
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent_items, key=lambda item: (-frequent_items[item], repr(item)))
        )
    }
    tree = _FPTree()
    for items, count in weighted_transactions:
        kept = sorted(
            (item for item in set(items) if item in frequent_items),
            key=order.__getitem__,
        )
        if kept:
            tree.insert(kept, count)
    return tree, frequent_items


def _mine(
    tree: _FPTree,
    frequent_items: Dict[Item, int],
    suffix: Itemset,
    min_count: int,
    results: Dict[Itemset, int],
    max_size: Optional[int],
) -> None:
    single = tree.is_single_path()
    if single is not None:
        # every combination of path items joins the suffix
        from itertools import combinations

        for size in range(1, len(single) + 1):
            if max_size is not None and len(suffix) + size > max_size:
                break
            for combo in combinations(single, size):
                itemset = suffix | frozenset(item for item, _count in combo)
                results[itemset] = min(count for _item, count in combo)
        return
    for item in sorted(frequent_items, key=repr):
        support = frequent_items[item]
        itemset = suffix | {item}
        results[itemset] = support
        if max_size is not None and len(itemset) >= max_size:
            continue
        conditional = tree.prefix_paths(item)
        subtree, sub_frequent = _build_tree(conditional, min_count)
        if sub_frequent:
            _mine(subtree, sub_frequent, itemset, min_count, results, max_size)


def fpgrowth(
    transactions: Sequence[frozenset],
    min_support: float,
    max_size: Optional[int] = None,
) -> Dict[Itemset, int]:
    """Mine all frequent itemsets — same contract as :func:`apriori`.

    >>> S = [frozenset("abc"), frozenset("ab"), frozenset("bcd")]
    >>> from repro.mining.itemsets import apriori
    >>> fpgrowth(S, 2/3) == apriori(S, 2/3)
    True
    """
    if not 0.0 <= min_support <= 1.0:
        raise MiningError(f"min_support must be in [0, 1], got {min_support}")
    total = len(transactions)
    if total == 0:
        return {}
    min_count = _min_count(min_support, total)
    weighted = [(sorted(transaction, key=repr), 1) for transaction in transactions]
    tree, frequent_items = _build_tree(weighted, min_count)
    results: Dict[Itemset, int] = {}
    if frequent_items:
        _mine(tree, frequent_items, frozenset(), min_count, results, max_size)
    return results
