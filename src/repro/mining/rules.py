"""Association rules and the Section 4.2 mining pipeline.

An association rule ``X -> Y`` (X, Y disjoint itemsets) has *support*
``supp(X ∪ Y)`` and *confidence* ``supp(X ∪ Y) / supp(X)`` — Example 3
of the paper.  Over absence-augmented transactions the rules capture
both relationship kinds the paper needs: "the presence of these elements
implies the presence of these elements" and "the absence of these
elements implies the presence of these elements".

The evolution algorithm (steps 1–4, Section 4.2) keeps only the rules
with *maximal* confidence (1): every surviving representative instance
that satisfies the antecedent also satisfies the consequent.  A key
consequence this module exploits: confidence-1 rules compose — if
``x -> y`` and ``x -> z`` both hold with confidence 1 then so does
``x -> yz`` — so the :class:`RuleSet` can answer every policy condition
from single-antecedent/single-consequent rules alone, while
:func:`generate_rules` still produces the general form for reporting
and the mining benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set


from repro.mining.itemsets import Itemset
from repro.mining.transactions import (
    Literal,
    Transaction,
    absent,
    augment_with_absent,
    filter_frequent_sequences,
    present,
)


class AssociationRule:
    """One mined rule ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent", "support", "confidence")

    def __init__(
        self,
        antecedent: Itemset,
        consequent: Itemset,
        support: float,
        confidence: float,
    ):
        self.antecedent = frozenset(antecedent)
        self.consequent = frozenset(consequent)
        self.support = support
        self.confidence = confidence

    def __eq__(self, other) -> bool:
        if not isinstance(other, AssociationRule):
            return NotImplemented
        return (
            self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self) -> int:
        return hash((self.antecedent, self.consequent))

    def __repr__(self) -> str:
        left = ", ".join(sorted(map(repr, self.antecedent)))
        right = ", ".join(sorted(map(repr, self.consequent)))
        return (
            f"{left} -> {right} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f})"
        )


def generate_rules(
    frequent: Dict[Itemset, int],
    transaction_count: int,
    min_confidence: float = 1.0,
    max_antecedent: Optional[int] = 1,
) -> List[AssociationRule]:
    """Derive rules from Apriori output.

    For every frequent itemset ``S`` and non-empty ``X ⊂ S`` with
    ``|X| <= max_antecedent``, emit ``X -> S \\ X`` when its confidence
    reaches ``min_confidence``.  The paper's policies only consult
    single-antecedent rules, hence the default bound; pass ``None`` to
    enumerate every split (exponential in ``|S|``).
    """
    if transaction_count <= 0:
        return []
    rules: List[AssociationRule] = []
    for itemset, count in frequent.items():
        if len(itemset) < 2:
            continue
        support = count / transaction_count
        for antecedent in _antecedent_candidates(itemset, max_antecedent):
            antecedent_count = frequent.get(antecedent)
            if not antecedent_count:
                continue  # cannot happen for truly frequent S (closure)
            confidence = count / antecedent_count
            if confidence >= min_confidence:
                rules.append(
                    AssociationRule(
                        antecedent, itemset - antecedent, support, confidence
                    )
                )
    return rules


def _antecedent_candidates(
    itemset: Itemset, max_antecedent: Optional[int]
) -> Iterable[Itemset]:
    items = sorted(itemset, key=repr)
    bound = len(items) - 1 if max_antecedent is None else min(
        max_antecedent, len(items) - 1
    )
    # enumerate subsets of size 1..bound
    from itertools import combinations

    for size in range(1, bound + 1):
        for combo in combinations(items, size):
            yield frozenset(combo)


class RuleSet:
    """Confidence-1 implications between literals, as the policies need them.

    Built directly from the surviving transactions (not from the Apriori
    lattice): ``implies(x, y)`` is True iff every transaction satisfying
    literal ``x`` also satisfies literal ``y`` — i.e. the rule
    ``x -> y`` has confidence 1 — and ``x`` has positive support.
    Because confidence-1 rules compose, every compound policy condition
    (e.g. Policy 1's mutual implication within a whole set) reduces to
    conjunctions of these pairwise queries.
    """

    def __init__(self, transactions: Sequence[Transaction]):
        self.transactions = list(transactions)
        self._implications: Dict[Literal, Set[Literal]] = {}
        self._support: Dict[Literal, int] = {}
        self._build()

    def _build(self) -> None:
        literals: Set[Literal] = set()
        for transaction in self.transactions:
            literals |= transaction
        for literal in literals:
            holding = [t for t in self.transactions if literal in t]
            self._support[literal] = len(holding)
            if not holding:
                continue
            common = set(holding[0])
            for transaction in holding[1:]:
                common &= transaction
            common.discard(literal)
            self._implications[literal] = common

    # ------------------------------------------------------------------
    # Queries used by the heuristic policies
    # ------------------------------------------------------------------

    def implies(self, antecedent: Literal, consequent: Literal) -> bool:
        """``antecedent -> consequent`` with confidence 1 (and support > 0)."""
        return consequent in self._implications.get(antecedent, set())

    def implies_all(self, antecedent: Literal, consequents: Iterable[Literal]) -> bool:
        """``antecedent -> {consequents}`` with confidence 1."""
        known = self._implications.get(antecedent)
        if known is None:
            return False
        return all(consequent in known for consequent in consequents)

    def mutually_present(self, labels: Sequence[str]) -> bool:
        """Policy 1's condition: every label implies the presence of all
        the others (the paper's ``x_i -> x_1 ... x_k`` both ways)."""
        label_list = list(labels)
        if len(label_list) < 2:
            return False
        for label in label_list:
            others = [present(other) for other in label_list if other != label]
            if not self.implies_all(present(label), others):
                return False
        return True

    def mutually_exclusive(self, left: str, right: str) -> bool:
        """Policy 4's condition: ``x -> ¬y`` and ``¬y -> x`` (and
        symmetrically), i.e. exactly one of the two is present."""
        return (
            self.implies(present(left), absent(right))
            and self.implies(absent(right), present(left))
            and self.implies(present(right), absent(left))
            and self.implies(absent(left), present(right))
        )

    def never_together(self, left: str, right: str) -> bool:
        """The two labels never co-occur (each presence implies the
        other's absence).  Weaker than :meth:`mutually_exclusive` — it
        does not require that one of the two is always present — and the
        right notion for choices with three or more alternatives, where
        "absent(y) -> present(x)" cannot hold pairwise."""
        return self.implies(present(left), absent(right)) and self.implies(
            present(right), absent(left)
        )

    def always_present(self, label: str) -> bool:
        """The label is present in every surviving transaction."""
        return self._support.get(absent(label), 0) == 0 and self._support.get(
            present(label), 0
        ) > 0

    def never_present(self, label: str) -> bool:
        """The label is absent from every surviving transaction."""
        return self._support.get(present(label), 0) == 0

    def sometimes_present(self, label: str) -> bool:
        """Present in some transactions, absent in others (optionality)."""
        return (
            self._support.get(present(label), 0) > 0
            and self._support.get(absent(label), 0) > 0
        )

    def implies_set(
        self, antecedents: Iterable[Literal], consequent: Literal
    ) -> bool:
        """Set-antecedent rule ``{antecedents} -> consequent`` with
        confidence 1 *and positive support* (a vacuously true rule over
        an antecedent no transaction satisfies is rejected — the paper
        only mines rules from actually frequent itemsets)."""
        antecedent_set = frozenset(antecedents)
        supporting = [
            transaction
            for transaction in self.transactions
            if antecedent_set <= transaction
        ]
        if not supporting:
            return False
        return all(consequent in transaction for transaction in supporting)

    def implies_any(self, antecedent: Literal, labels: Iterable[str]) -> bool:
        """Every transaction satisfying ``antecedent`` asserts at least
        one of ``labels`` present (disjunctive consequent; positive
        support required)."""
        label_list = list(labels)
        supporting = [
            transaction for transaction in self.transactions if antecedent in transaction
        ]
        if not supporting:
            return False
        return all(
            any(present(label) in transaction for label in label_list)
            for transaction in supporting
        )

    def all_absent_sometimes(self, labels: Iterable[str]) -> bool:
        """Some surviving transaction asserts every one of ``labels``
        absent (evidence that the group as a whole is optional)."""
        label_list = list(labels)
        if not label_list:
            return False
        return any(
            all(absent(label) in transaction for label in label_list)
            for transaction in self.transactions
        )

    def support_of(self, literal: Literal) -> float:
        if not self.transactions:
            return 0.0
        return self._support.get(literal, 0) / len(self.transactions)

    def presence_implies(self, label: str, other: str) -> bool:
        """``label`` present -> ``other`` present (confidence 1)."""
        return self.implies(present(label), present(other))

    def co_occurring_group(self, labels: Iterable[str]) -> bool:
        """Alias of :meth:`mutually_present` over an iterable."""
        return self.mutually_present(list(labels))

    def to_rules(self) -> List[AssociationRule]:
        """Materialise the pairwise confidence-1 rules (for reporting)."""
        total = len(self.transactions) or 1
        rules: List[AssociationRule] = []
        for antecedent, consequents in sorted(
            self._implications.items(), key=lambda pair: repr(pair[0])
        ):
            antecedent_support = self._support[antecedent]
            for consequent in sorted(consequents, key=repr):
                joint = sum(
                    1
                    for transaction in self.transactions
                    if antecedent in transaction and consequent in transaction
                )
                rules.append(
                    AssociationRule(
                        frozenset({antecedent}),
                        frozenset({consequent}),
                        joint / total,
                        joint / antecedent_support,
                    )
                )
        return rules

    def __repr__(self) -> str:
        pair_count = sum(len(v) for v in self._implications.values())
        return f"RuleSet({len(self.transactions)} transactions, {pair_count} implications)"


def mine_evolution_rules(
    sequences: Sequence[FrozenSet[str]],
    labels: Iterable[str],
    min_support: float,
) -> RuleSet:
    """Steps 1–4 of the Section 4.2 evolution algorithm.

    1. augment each recorded sequence with absent elements;
    2. keep the most frequent sequences (support > ``min_support``);
    3. + 4. extract the association rules with maximal confidence from
       the survivors, exposed as a :class:`RuleSet`.

    Example 5's input (documents ``(b c)+ d*`` and ``(b c)+ e``):

    >>> rules = mine_evolution_rules(
    ...     [frozenset("bcd"), frozenset("bce")] * 5, "bcde", 0.2
    ... )
    >>> rules.mutually_present(["b", "c"])
    True
    >>> rules.mutually_exclusive("d", "e")
    True
    """
    transactions = augment_with_absent(sequences, labels)
    survivors = filter_frequent_sequences(transactions, min_support)
    if not survivors:
        # nothing representative: fall back to the full population so the
        # evolution phase still has evidence to work with
        survivors = transactions
    return RuleSet(survivors)
