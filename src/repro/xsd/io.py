"""Parsing and serializing ``xs:schema`` documents.

The supported surface (namespace prefix fixed to ``xs``):

.. code-block:: xml

    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="book">
        <xs:complexType mixed="false">
          <xs:sequence>
            <xs:element ref="title"/>
            <xs:element ref="author" minOccurs="1" maxOccurs="unbounded"/>
            <xs:choice minOccurs="0">
              <xs:element ref="journal"/>
              <xs:element ref="booktitle"/>
            </xs:choice>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="title" type="xs:string"/>
    </xs:schema>

Parsing goes through this library's own XML parser; serialization emits
exactly this shape, so ``parse_schema(serialize_schema(s)) == s`` on
the supported subset (round-trip tested).
"""

from __future__ import annotations


from repro.xmltree.document import Document, Element
from repro.xmltree.parser import parse_document
from repro.xmltree.serializer import serialize_document
from repro.xsd.model import (
    UNBOUNDED,
    ComplexType,
    Particle,
    Schema,
    SchemaElement,
    SchemaError,
    SimpleType,
)

_XS = "http://www.w3.org/2001/XMLSchema"


def _local(tag: str) -> str:
    return tag.split(":", 1)[1] if ":" in tag else tag


def _occurs(element: Element) -> tuple:
    low = int(element.attributes.get("minOccurs", "1"))
    high_raw = element.attributes.get("maxOccurs", "1")
    high = UNBOUNDED if high_raw == "unbounded" else int(high_raw)
    return low, high


def parse_schema(source: str, name: str = "schema") -> Schema:
    """Parse an ``xs:schema`` document string."""
    document = parse_document(source)
    root = document.root
    if _local(root.tag) != "schema":
        raise SchemaError(f"expected an xs:schema root, found <{root.tag}>")
    schema = Schema(name=name)
    first: str = ""
    for child in root.element_children():
        if _local(child.tag) != "element":
            raise SchemaError(f"unsupported top-level <{child.tag}>")
        element = _parse_element(child)
        schema.add(element)
        if not first:
            first = element.name
    if not len(schema):
        raise SchemaError("the schema declares no elements")
    schema.root = root.attributes.get("root", first)
    return schema


def _parse_element(node: Element) -> SchemaElement:
    name = node.attributes.get("name")
    if not name:
        raise SchemaError("top-level xs:element requires a name")
    type_attr = node.attributes.get("type")
    if type_attr:
        base = _local(type_attr)
        return SchemaElement(name, SimpleType(base))
    complex_nodes = [
        child for child in node.element_children() if _local(child.tag) == "complexType"
    ]
    if not complex_nodes:
        return SchemaElement(name, SimpleType())
    return SchemaElement(name, _parse_complex_type(complex_nodes[0]))


def _parse_complex_type(node: Element) -> ComplexType:
    mixed = node.attributes.get("mixed", "false").lower() == "true"
    groups = [
        child
        for child in node.element_children()
        if _local(child.tag) in ("sequence", "choice")
    ]
    if not groups:
        return ComplexType("sequence", [], mixed=mixed)
    group = _parse_group(groups[0])
    group.mixed = mixed
    return group


def _parse_group(node: Element) -> ComplexType:
    compositor = _local(node.tag)
    particles = []
    for child in node.element_children():
        local = _local(child.tag)
        low, high = _occurs(child)
        if local == "element":
            reference = child.attributes.get("ref") or child.attributes.get("name")
            if not reference:
                raise SchemaError("nested xs:element requires ref or name")
            particles.append(Particle(_local(reference), low, high))
        elif local in ("sequence", "choice"):
            particles.append(Particle(_parse_group(child), low, high))
        else:
            raise SchemaError(f"unsupported particle <{child.tag}>")
    return ComplexType(compositor, particles)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def serialize_schema(schema: Schema, indent: str = "  ") -> str:
    """Render a schema back to ``xs:schema`` syntax."""
    root = Element(
        "xs:schema",
        {"xmlns:xs": _XS, "root": schema.root},
    )
    for element in schema:
        root.children.append(_element_node(element))
    return serialize_document(Document(root), indent=indent, xml_declaration=True)


def _element_node(element: SchemaElement) -> Element:
    node = Element("xs:element", {"name": element.name})
    if isinstance(element.type, SimpleType):
        node.attributes["type"] = f"xs:{element.type.base}"
        return node
    complex_node = Element("xs:complexType")
    if element.type.mixed:
        complex_node.attributes["mixed"] = "true"
    if element.type.particles:
        complex_node.children.append(_group_node(element.type))
    node.children.append(complex_node)
    return node


def _group_node(group: ComplexType) -> Element:
    node = Element(f"xs:{group.compositor}")
    for particle in group.particles:
        if isinstance(particle.term, str):
            child = Element("xs:element", {"ref": particle.term})
        else:
            child = _group_node(particle.term)
        if particle.min_occurs != 1:
            child.attributes["minOccurs"] = str(particle.min_occurs)
        if particle.max_occurs != 1:
            child.attributes["maxOccurs"] = (
                "unbounded" if particle.max_occurs == UNBOUNDED else str(particle.max_occurs)
            )
        node.children.append(child)
    return node
