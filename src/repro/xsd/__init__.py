"""XML Schema (XSD) support — the paper's other Section 6 direction.

"Since a DTD can be considered as a kind of XML schema, we are
currently extending the approach to the evolution of XML schemas."

This subpackage provides the subset of W3C XML Schema the extension
needs — named elements with complex types (``sequence``/``choice``
compositors, ``minOccurs``/``maxOccurs`` bounds, ``mixed`` content) and
string simple types — plus:

- :mod:`repro.xsd.model` — the schema object model;
- :mod:`repro.xsd.convert` — lossless-where-expressible conversion
  between DTDs and schemas (occurrence bounds beyond ``0/1/unbounded``
  widen when round-tripping through a DTD, and that widening is
  reported);
- :mod:`repro.xsd.io` — parsing ``xs:schema`` documents (through this
  library's own XML parser) and serializing back;
- :func:`repro.xsd.evolve.evolve_schema` — schema evolution by the
  paper's machinery: convert, record, evolve, convert back.
"""

from repro.xsd.model import (
    Schema,
    SchemaElement,
    ComplexType,
    SimpleType,
    Particle,
    UNBOUNDED,
)
from repro.xsd.convert import dtd_to_schema, schema_to_dtd, ConversionReport
from repro.xsd.io import parse_schema, serialize_schema
from repro.xsd.evolve import evolve_schema, SchemaEvolutionResult

__all__ = [
    "Schema",
    "SchemaElement",
    "ComplexType",
    "SimpleType",
    "Particle",
    "UNBOUNDED",
    "dtd_to_schema",
    "schema_to_dtd",
    "ConversionReport",
    "parse_schema",
    "serialize_schema",
    "evolve_schema",
    "SchemaEvolutionResult",
]
