"""Conversion between DTDs and the XSD subset.

DTD → schema is exact: each operator maps to occurrence bounds
(``?`` → 0..1, ``*`` → 0..unbounded, ``+`` → 1..unbounded), ``AND`` to a
``sequence``, ``OR`` to a ``choice``, mixed content to ``mixed=True``.

Schema → DTD is exact *except* for occurrence bounds DTDs cannot say:
``minOccurs``/``maxOccurs`` outside {0, 1, unbounded} widen to the
closest DTD operator (e.g. ``2..5`` → ``+`` — lower bound weakened to 1,
upper to unbounded).  Every widening is recorded in the returned
:class:`ConversionReport`, because schema evolution through the DTD
machinery must tell the user where precision was lost.
"""

from __future__ import annotations

from typing import List, NamedTuple, Union

from repro.dtd import content_model as cm
from repro.dtd.dtd import DTD, ElementDecl
from repro.xsd.model import (
    UNBOUNDED,
    ComplexType,
    Particle,
    Schema,
    SchemaElement,
    SimpleType,
)
from repro.xmltree.tree import Tree


class Widening(NamedTuple):
    """One occurrence-bound loss during schema → DTD conversion."""

    element: str
    particle: str
    original: str
    widened_to: str


class ConversionReport(NamedTuple):
    """The product of a conversion plus its precision losses."""

    result: Union[DTD, Schema]
    widenings: List[Widening]

    @property
    def lossless(self) -> bool:
        return not self.widenings


# ----------------------------------------------------------------------
# DTD -> schema (exact)
# ----------------------------------------------------------------------


def dtd_to_schema(dtd: DTD) -> Schema:
    """Convert a DTD to the schema model (always exact).

    >>> from repro.dtd.parser import parse_dtd
    >>> schema = dtd_to_schema(parse_dtd("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>"))
    >>> schema["a"].type.particles[0].occurs_label()
    '0..unbounded'
    """
    schema = Schema(name=dtd.name)
    for decl in dtd:
        schema.add(SchemaElement(decl.name, _model_to_type(decl)))
    schema.root = dtd.root
    return schema


def _model_to_type(decl: ElementDecl) -> Union[ComplexType, SimpleType]:
    content = decl.content
    if decl.is_empty:
        return ComplexType("sequence", [])
    if content.label == cm.PCDATA:
        return SimpleType()
    if decl.is_any:
        # ANY has no schema analogue in the subset: model as mixed choice
        # over nothing (callers of the evolution path never produce ANY)
        return ComplexType("sequence", [], mixed=True)
    if decl.is_mixed:
        labels = sorted(decl.declared_labels())
        particles = [Particle(label, 0, UNBOUNDED) for label in labels]
        return ComplexType("choice", particles, mixed=True)
    particle = _model_to_particle(content)
    if isinstance(particle.term, ComplexType) and (
        particle.min_occurs == 1 and particle.max_occurs == 1
    ):
        return particle.term
    # a bare leaf or suffixed group at top level: wrap in a sequence
    return ComplexType("sequence", [particle])


def _model_to_particle(model: Tree) -> Particle:
    label = model.label
    if cm.is_element_label(label):
        return Particle(label, 1, 1)
    if label == cm.OPT:
        return _with_bounds(_model_to_particle(model.children[0]), 0, 1)
    if label == cm.STAR:
        return _with_bounds(_model_to_particle(model.children[0]), 0, UNBOUNDED)
    if label == cm.PLUS:
        return _with_bounds(_model_to_particle(model.children[0]), 1, UNBOUNDED)
    if label in (cm.AND, cm.OR):
        compositor = "sequence" if label == cm.AND else "choice"
        particles = [_model_to_particle(child) for child in model.children]
        return Particle(ComplexType(compositor, particles), 1, 1)
    raise ValueError(f"cannot convert content-model label {label!r}")


def _with_bounds(particle: Particle, low: int, high: int) -> Particle:
    """Apply an operator's bounds on top of a particle's own bounds."""
    if particle.min_occurs == 1 and particle.max_occurs == 1:
        return Particle(particle.term, low, high)
    # stacked operators: compose the ranges
    new_low = particle.min_occurs * low
    if UNBOUNDED in (particle.max_occurs, high):
        new_high = UNBOUNDED if high != 0 else 0
    else:
        new_high = particle.max_occurs * high
    return Particle(particle.term, new_low, new_high)


# ----------------------------------------------------------------------
# schema -> DTD (widening where needed)
# ----------------------------------------------------------------------


def schema_to_dtd(schema: Schema) -> ConversionReport:
    """Convert a schema to a DTD, reporting occurrence widenings."""
    dtd = DTD(name=schema.name)
    widenings: List[Widening] = []
    for element in schema:
        content = _type_to_model(element, widenings)
        dtd.add(ElementDecl(element.name, content))
    dtd.root = schema.root
    return ConversionReport(dtd, widenings)


def _type_to_model(element: SchemaElement, widenings: List[Widening]) -> Tree:
    if isinstance(element.type, SimpleType):
        return cm.pcdata()
    complex_type = element.type
    if complex_type.mixed:
        labels = sorted(set(complex_type.referenced_names()))
        return cm.mixed(*labels)
    if not complex_type.particles:
        return cm.empty()
    return _group_to_model(complex_type, element.name, widenings)


def _group_to_model(
    group: ComplexType, element_name: str, widenings: List[Widening]
) -> Tree:
    parts = [
        _particle_to_model(particle, element_name, widenings)
        for particle in group.particles
    ]
    if len(parts) == 1:
        return parts[0]
    operator = cm.AND if group.compositor == "sequence" else cm.OR
    return Tree(operator, parts)


def _particle_to_model(
    particle: Particle, element_name: str, widenings: List[Widening]
) -> Tree:
    if isinstance(particle.term, str):
        inner: Tree = Tree.leaf(particle.term)
        label = particle.term
    else:
        inner = _group_to_model(particle.term, element_name, widenings)
        label = f"({particle.term.compositor})"
    low, high = particle.min_occurs, particle.max_occurs
    if (low, high) == (1, 1):
        return inner
    if (low, high) == (0, 1):
        return Tree(cm.OPT, [inner])
    if (low, high) == (0, UNBOUNDED):
        return Tree(cm.STAR, [inner])
    if (low, high) == (1, UNBOUNDED):
        return Tree(cm.PLUS, [inner])
    # anything else widens to the closest DTD operator
    operator = cm.STAR if low == 0 else cm.PLUS
    widened = "0..unbounded" if low == 0 else "1..unbounded"
    widenings.append(
        Widening(element_name, label, particle.occurs_label(), widened)
    )
    return Tree(operator, [inner])
