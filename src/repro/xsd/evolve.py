"""Schema evolution through the DTD machinery.

The Section 6 route: a schema in the supported subset converts to a
DTD, the paper's recording/evolution pipeline adapts that DTD to the
documents, and the evolved DTD converts back.  Occurrence bounds DTDs
cannot express are widened on the way in, and the result records both
the widenings and the element actions, so callers see exactly what the
round trip cost.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

from repro.core.evolution import EvolutionConfig, EvolutionResult, evolve_dtd
from repro.core.extended_dtd import ExtendedDTD
from repro.core.recorder import Recorder
from repro.similarity.tags import TagMatcher
from repro.xmltree.document import Document
from repro.xsd.convert import ConversionReport, Widening, dtd_to_schema, schema_to_dtd
from repro.xsd.model import Schema


class SchemaEvolutionResult(NamedTuple):
    """The product of one schema evolution round."""

    old_schema: Schema
    new_schema: Schema
    dtd_result: EvolutionResult
    widenings: List[Widening]

    @property
    def changed(self) -> bool:
        return self.dtd_result.changed or self.new_schema != self.old_schema


def evolve_schema(
    schema: Schema,
    documents: Iterable[Document],
    config: EvolutionConfig = EvolutionConfig(),
    tag_matcher: Optional[TagMatcher] = None,
) -> SchemaEvolutionResult:
    """Adapt a schema to a document population.

    >>> from repro.xsd.io import parse_schema
    >>> from repro.xmltree.parser import parse_document
    >>> schema = parse_schema('''
    ...   <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    ...     <xs:element name="a">
    ...       <xs:complexType><xs:sequence>
    ...         <xs:element ref="b"/>
    ...       </xs:sequence></xs:complexType>
    ...     </xs:element>
    ...     <xs:element name="b" type="xs:string"/>
    ...   </xs:schema>''')
    >>> docs = [parse_document("<a><b>x</b><c>new</c></a>")] * 10
    >>> result = evolve_schema(schema, docs)
    >>> "c" in result.new_schema
    True
    """
    conversion: ConversionReport = schema_to_dtd(schema)
    extended = ExtendedDTD(conversion.result)
    recorder = Recorder(extended)
    for document in documents:
        recorder.record(document)
    dtd_result = evolve_dtd(extended, config, tag_matcher=tag_matcher)
    new_schema = dtd_to_schema(dtd_result.new_dtd)
    return SchemaEvolutionResult(
        schema, new_schema, dtd_result, list(conversion.widenings)
    )
