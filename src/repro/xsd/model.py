"""Object model for the supported XML Schema subset.

A :class:`Schema` maps element names to :class:`SchemaElement`
declarations.  An element's type is either a :class:`SimpleType`
(character data) or a :class:`ComplexType`: a compositor
(``sequence`` or ``choice``) over :class:`Particle` items, each with
``min_occurs``/``max_occurs`` bounds; particles reference elements by
name or nest another compositor group.  ``mixed=True`` allows character
data interleaved with the element content (the DTD mixed-content
analogue).

This deliberately covers exactly what the DTD conversion layer can
express both ways, plus richer occurrence bounds (``minOccurs=2``,
``maxOccurs=5``...) that DTDs cannot — the conversion reports where
those get widened.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

from repro.errors import ReproError

#: sentinel for ``maxOccurs="unbounded"``
UNBOUNDED = -1


class SchemaError(ReproError):
    """Raised for structurally invalid schemas."""


class Particle:
    """One item of a compositor: an element reference or a nested group."""

    __slots__ = ("term", "min_occurs", "max_occurs")

    def __init__(
        self,
        term: Union[str, "ComplexType"],
        min_occurs: int = 1,
        max_occurs: int = 1,
    ):
        if min_occurs < 0:
            raise SchemaError("minOccurs cannot be negative")
        if max_occurs != UNBOUNDED and max_occurs < min_occurs:
            raise SchemaError("maxOccurs cannot be below minOccurs")
        self.term = term
        self.min_occurs = min_occurs
        self.max_occurs = max_occurs

    @property
    def is_reference(self) -> bool:
        return isinstance(self.term, str)

    @property
    def optional(self) -> bool:
        return self.min_occurs == 0

    @property
    def repeatable(self) -> bool:
        return self.max_occurs == UNBOUNDED or self.max_occurs > 1

    def occurs_label(self) -> str:
        high = "unbounded" if self.max_occurs == UNBOUNDED else str(self.max_occurs)
        return f"{self.min_occurs}..{high}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Particle):
            return NotImplemented
        return (
            self.term == other.term
            and self.min_occurs == other.min_occurs
            and self.max_occurs == other.max_occurs
        )

    def __repr__(self) -> str:
        return f"Particle({self.term!r}, {self.occurs_label()})"


class ComplexType:
    """A compositor group: ``sequence`` or ``choice`` over particles."""

    __slots__ = ("compositor", "particles", "mixed")

    def __init__(
        self,
        compositor: str,
        particles: Optional[Sequence[Particle]] = None,
        mixed: bool = False,
    ):
        if compositor not in ("sequence", "choice"):
            raise SchemaError(f"unsupported compositor {compositor!r}")
        self.compositor = compositor
        self.particles: List[Particle] = list(particles) if particles else []
        self.mixed = mixed

    def referenced_names(self) -> Iterator[str]:
        for particle in self.particles:
            if isinstance(particle.term, str):
                yield particle.term
            else:
                yield from particle.term.referenced_names()

    def __eq__(self, other) -> bool:
        if not isinstance(other, ComplexType):
            return NotImplemented
        return (
            self.compositor == other.compositor
            and self.particles == other.particles
            and self.mixed == other.mixed
        )

    def __repr__(self) -> str:
        return f"ComplexType({self.compositor!r}, {self.particles!r}, mixed={self.mixed})"


class SimpleType:
    """Character-data content (``xs:string`` by default)."""

    __slots__ = ("base",)

    def __init__(self, base: str = "string"):
        self.base = base

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimpleType):
            return NotImplemented
        return self.base == other.base

    def __repr__(self) -> str:
        return f"SimpleType({self.base!r})"


#: an element with neither content nor text (the DTD ``EMPTY``)
EMPTY_TYPE = ComplexType("sequence", [])


class SchemaElement:
    """A top-level element declaration."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, content_type: Union[ComplexType, SimpleType]):
        self.name = name
        self.type = content_type

    @property
    def is_simple(self) -> bool:
        return isinstance(self.type, SimpleType)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SchemaElement):
            return NotImplemented
        return self.name == other.name and self.type == other.type

    def __repr__(self) -> str:
        return f"SchemaElement({self.name!r}, {self.type!r})"


class Schema:
    """An ordered set of element declarations with a designated root."""

    def __init__(
        self,
        elements: Optional[Sequence[SchemaElement]] = None,
        root: Optional[str] = None,
        name: str = "schema",
    ):
        self.name = name
        self._elements = {}
        for element in elements or []:
            self.add(element)
        if root is not None and root not in self._elements:
            raise SchemaError(f"root element {root!r} is not declared")
        self._root = root

    def add(self, element: SchemaElement, replace: bool = False) -> None:
        if element.name in self._elements and not replace:
            raise SchemaError(f"duplicate element {element.name!r}")
        self._elements[element.name] = element

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> SchemaElement:
        return self._elements[name]

    def get(self, name: str) -> Optional[SchemaElement]:
        return self._elements.get(name)

    def __iter__(self) -> Iterator[SchemaElement]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def element_names(self) -> List[str]:
        return list(self._elements)

    @property
    def root(self) -> str:
        if self._root is not None:
            return self._root
        if not self._elements:
            raise SchemaError("the schema declares no elements")
        return next(iter(self._elements))

    @root.setter
    def root(self, name: str) -> None:
        if name not in self._elements:
            raise SchemaError(f"root element {name!r} is not declared")
        self._root = name

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._elements == other._elements and self.root == other.root

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, elements={self.element_names()!r})"
