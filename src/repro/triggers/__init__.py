"""The evolution trigger language (a Section 6 direction).

"A second direction is related to the development of an evolution
trigger language, by using which applications can specify and
automatically activate DTD evolution."

Rules look like::

    ON catalog WHEN score > 0.2 AND documents >= 50 EVOLVE WITH psi = 0.1
    ON *       WHEN invalid_documents / documents > 0.4 EVOLVE

- :mod:`repro.triggers.language` — tokenizer, recursive-descent parser
  and condition evaluator;
- :mod:`repro.triggers.trigger` — :class:`Trigger` / :class:`TriggerSet`
  objects and the metrics environment built from an extended DTD;
  :class:`repro.core.engine.XMLSource` accepts a ``triggers=`` argument
  that replaces the default ``tau`` check phase.
"""

from repro.triggers.language import TriggerSyntaxError, parse_trigger, parse_triggers
from repro.triggers.trigger import Trigger, TriggerSet, metrics_environment

__all__ = [
    "TriggerSyntaxError",
    "parse_trigger",
    "parse_triggers",
    "Trigger",
    "TriggerSet",
    "metrics_environment",
]
