"""Trigger objects and their wiring into the source engine.

A :class:`Trigger` binds a parsed rule to runtime behaviour: when its
condition holds over a DTD's metrics environment, the engine runs the
evolution phase for that DTD with the rule's parameter overrides
(``psi``/``mu``/``tau``/... applied on top of the source's
:class:`~repro.core.evolution.EvolutionConfig`).

The metrics exposed to conditions:

==================  ====================================================
``score``           the paper's activation score (check-phase LHS)
``documents``       documents recorded since the last evolution
``valid_documents`` fully valid among those
``invalid_documents`` the complement
``repository``      documents currently unclassified (source-wide)
``evolutions``      evolutions this DTD has gone through
``elements_recorded`` element records currently held
``storage``         extended-DTD aggregate cells
==================  ====================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.evolution import EvolutionConfig
from repro.core.extended_dtd import ExtendedDTD
from repro.triggers.language import ParsedTrigger, parse_trigger

#: the metric names conditions may reference (parse-time checked)
KNOWN_METRICS = (
    "score",
    "documents",
    "valid_documents",
    "invalid_documents",
    "repository",
    "evolutions",
    "elements_recorded",
    "storage",
)

#: EvolutionConfig fields a WITH clause may override
_OVERRIDABLE = {
    "sigma",
    "tau",
    "psi",
    "mu",
    "alpha",
    "beta",
    "min_valid_for_restriction",
    "min_instances",
    "min_documents",
}


def metrics_environment(
    extended: ExtendedDTD, repository_size: int = 0
) -> Dict[str, float]:
    """The evaluation environment for one DTD."""
    return {
        "score": extended.activation_score,
        "documents": float(extended.document_count),
        "valid_documents": float(extended.valid_document_count),
        "invalid_documents": float(
            extended.document_count - extended.valid_document_count
        ),
        "repository": float(repository_size),
        "evolutions": float(extended.evolution_count),
        "elements_recorded": float(len(extended.records)),
        "storage": float(extended.storage_cells()),
    }


class Trigger:
    """One compiled rule."""

    def __init__(self, rule: ParsedTrigger, source_text: str = ""):
        self.target = rule.target
        self.condition = rule.condition
        self.overrides = dict(rule.overrides)
        self.source_text = source_text
        unknown = set(self.overrides) - _OVERRIDABLE
        if unknown:
            from repro.triggers.language import TriggerSyntaxError

            raise TriggerSyntaxError(
                f"WITH clause sets unknown parameters: {sorted(unknown)}"
            )

    @classmethod
    def parse(cls, source: str) -> "Trigger":
        """Compile one rule string.

        >>> Trigger.parse("ON * WHEN score > 0.5 EVOLVE").matches("anything")
        True
        """
        return cls(parse_trigger(source, KNOWN_METRICS), source)

    def matches(self, dtd_name: str) -> bool:
        return self.target == "*" or self.target == dtd_name

    def should_fire(self, environment: Dict[str, float]) -> bool:
        return self.condition.holds(environment)

    def apply_overrides(self, config: EvolutionConfig) -> EvolutionConfig:
        """The source config with this rule's WITH parameters applied."""
        if not self.overrides:
            return config
        integer_fields = {
            "min_valid_for_restriction",
            "min_instances",
            "min_documents",
        }
        values = config._asdict()
        for name, value in self.overrides.items():
            values[name] = int(value) if name in integer_fields else value
        return EvolutionConfig(**values)

    def __repr__(self) -> str:
        return f"Trigger({self.source_text or self.target!r})"


class TriggerSet:
    """An ordered collection of triggers; first match fires."""

    def __init__(self, triggers: Iterable[Trigger] = ()):
        self.triggers: List[Trigger] = list(triggers)

    @classmethod
    def parse(cls, source: str) -> "TriggerSet":
        """Compile a rule file (one rule per line, ``#`` comments)."""
        triggers = []
        for line in source.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            triggers.append(Trigger.parse(stripped))
        return cls(triggers)

    def add(self, trigger: Trigger) -> None:
        self.triggers.append(trigger)

    def __len__(self) -> int:
        return len(self.triggers)

    def firing_trigger(
        self, dtd_name: str, environment: Dict[str, float]
    ) -> Optional[Trigger]:
        """The first trigger matching the DTD whose condition holds."""
        for trigger in self.triggers:
            if trigger.matches(dtd_name) and trigger.should_fire(environment):
                return trigger
        return None

    def __repr__(self) -> str:
        return f"TriggerSet({len(self.triggers)} rules)"
