"""Parser and evaluator for the evolution trigger language.

Grammar (case-insensitive keywords)::

    rule       := "ON" target "WHEN" condition "EVOLVE" [ "WITH" overrides ]
    target     := NAME | "*"
    condition  := disjunct { "OR" disjunct }
    disjunct   := comparison { "AND" comparison }
    comparison := sum ( ">" | ">=" | "<" | "<=" | "==" | "!=" ) sum
                | "(" condition ")" | "NOT" comparison
    sum        := term { ("+" | "-") term }
    term       := factor { ("*" | "/") factor }
    factor     := NUMBER | METRIC | "(" sum ")" | "-" factor
    overrides  := NAME "=" NUMBER { "," NAME "=" NUMBER }

Metrics are free identifiers resolved against the evaluation
environment (see :func:`repro.triggers.trigger.metrics_environment`):
``score``, ``documents``, ``valid_documents``, ``invalid_documents``,
``repository``, ``evolutions``, ``elements_recorded``, ``storage``.
Unknown metrics are a *parse-time* error when a metric whitelist is
given, otherwise an evaluation-time error — triggers fail loudly, never
silently.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional

from repro.errors import ReproError


class TriggerSyntaxError(ReproError):
    """Raised for malformed trigger rules."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_KEYWORDS = {"ON", "WHEN", "EVOLVE", "WITH", "AND", "OR", "NOT"}
_PUNCT = ["(", ")", ",", "=", ">=", "<=", "==", "!=", ">", "<", "+", "-", "*", "/"]


class _Token(NamedTuple):
    kind: str  # KEYWORD | NAME | NUMBER | PUNCT | END
    value: str


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char.isspace():
            position += 1
            continue
        matched_punct = None
        for punct in sorted(_PUNCT, key=len, reverse=True):
            if source.startswith(punct, position):
                matched_punct = punct
                break
        # '*' doubles as the wildcard target; the parser disambiguates
        if matched_punct:
            tokens.append(_Token("PUNCT", matched_punct))
            position += len(matched_punct)
            continue
        if char.isdigit() or (char == "." and position + 1 < length):
            start = position
            while position < length and (source[position].isdigit() or source[position] == "."):
                position += 1
            tokens.append(_Token("NUMBER", source[start:position]))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            word = source[start:position]
            if word.upper() in _KEYWORDS:
                tokens.append(_Token("KEYWORD", word.upper()))
            else:
                tokens.append(_Token("NAME", word))
            continue
        raise TriggerSyntaxError(f"unexpected character {char!r} in trigger rule")
    tokens.append(_Token("END", ""))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

Env = Dict[str, float]


class Expr:
    """A numeric expression over metrics."""

    def evaluate(self, env: Env) -> float:
        raise NotImplementedError

    def metrics(self) -> frozenset:
        raise NotImplementedError


class Number(Expr):
    def __init__(self, value: float):
        self.value = value

    def evaluate(self, env: Env) -> float:
        return self.value

    def metrics(self) -> frozenset:
        return frozenset()

    def __repr__(self) -> str:
        return f"{self.value:g}"


class Metric(Expr):
    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env: Env) -> float:
        if self.name not in env:
            raise TriggerSyntaxError(f"unknown metric {self.name!r}")
        return env[self.name]

    def metrics(self) -> frozenset:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


class Arith(Expr):
    _OPS: Dict[str, Callable[[float, float], float]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if b != 0 else float("inf"),
    }

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Env) -> float:
        return self._OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def metrics(self) -> frozenset:
        return self.left.metrics() | self.right.metrics()

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Condition:
    """A boolean expression over metrics."""

    def holds(self, env: Env) -> bool:
        raise NotImplementedError

    def metrics(self) -> frozenset:
        raise NotImplementedError


class Comparison(Condition):
    _OPS: Dict[str, Callable[[float, float], bool]] = {
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def holds(self, env: Env) -> bool:
        return self._OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def metrics(self) -> frozenset:
        return self.left.metrics() | self.right.metrics()

    def __repr__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class BoolOp(Condition):
    def __init__(self, op: str, parts: List[Condition]):
        self.op = op  # "AND" | "OR"
        self.parts = parts

    def holds(self, env: Env) -> bool:
        if self.op == "AND":
            return all(part.holds(env) for part in self.parts)
        return any(part.holds(env) for part in self.parts)

    def metrics(self) -> frozenset:
        result = frozenset()
        for part in self.parts:
            result |= part.metrics()
        return result

    def __repr__(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(map(repr, self.parts)) + ")"


class Negation(Condition):
    def __init__(self, inner: Condition):
        self.inner = inner

    def holds(self, env: Env) -> bool:
        return not self.inner.holds(env)

    def metrics(self) -> frozenset:
        return self.inner.metrics()

    def __repr__(self) -> str:
        return f"NOT {self.inner}"


class ParsedTrigger(NamedTuple):
    """The raw parse result of one rule."""

    target: str  # DTD name or "*"
    condition: Condition
    overrides: Dict[str, float]


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token], known_metrics: Optional[Iterable[str]]):
        self.tokens = tokens
        self.position = 0
        self.known_metrics = frozenset(known_metrics) if known_metrics else None

    def _peek(self) -> _Token:
        return self.tokens[self.position]

    def _next(self) -> _Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "KEYWORD" or token.value != word:
            raise TriggerSyntaxError(f"expected {word}, found {token.value!r}")

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.kind != "PUNCT" or token.value != punct:
            raise TriggerSyntaxError(f"expected {punct!r}, found {token.value!r}")

    # -- rule ------------------------------------------------------------

    def parse_rule(self) -> ParsedTrigger:
        self._expect_keyword("ON")
        token = self._next()
        if token.kind == "NAME" or (token.kind == "PUNCT" and token.value == "*"):
            target = token.value
        else:
            raise TriggerSyntaxError(f"expected a DTD name or '*', found {token.value!r}")
        self._expect_keyword("WHEN")
        condition = self._parse_condition()
        self._expect_keyword("EVOLVE")
        overrides: Dict[str, float] = {}
        if self._peek() == _Token("KEYWORD", "WITH"):
            self._next()
            overrides = self._parse_overrides()
        if self._peek().kind != "END":
            raise TriggerSyntaxError(
                f"trailing input after the rule: {self._peek().value!r}"
            )
        return ParsedTrigger(target, condition, overrides)

    def _parse_overrides(self) -> Dict[str, float]:
        overrides: Dict[str, float] = {}
        while True:
            name_token = self._next()
            if name_token.kind != "NAME":
                raise TriggerSyntaxError(
                    f"expected a parameter name, found {name_token.value!r}"
                )
            self._expect_punct("=")
            value_token = self._next()
            if value_token.kind != "NUMBER":
                raise TriggerSyntaxError(
                    f"expected a number for {name_token.value}, found {value_token.value!r}"
                )
            overrides[name_token.value] = float(value_token.value)
            if self._peek() == _Token("PUNCT", ","):
                self._next()
                continue
            return overrides

    # -- condition ---------------------------------------------------------

    def _parse_condition(self) -> Condition:
        parts = [self._parse_conjunction()]
        while self._peek() == _Token("KEYWORD", "OR"):
            self._next()
            parts.append(self._parse_conjunction())
        return parts[0] if len(parts) == 1 else BoolOp("OR", parts)

    def _parse_conjunction(self) -> Condition:
        parts = [self._parse_comparison()]
        while self._peek() == _Token("KEYWORD", "AND"):
            self._next()
            parts.append(self._parse_comparison())
        return parts[0] if len(parts) == 1 else BoolOp("AND", parts)

    def _parse_comparison(self) -> Condition:
        if self._peek() == _Token("KEYWORD", "NOT"):
            self._next()
            return Negation(self._parse_comparison())
        if self._peek() == _Token("PUNCT", "("):
            # could be a parenthesised condition or a parenthesised sum;
            # try condition first by lookahead: scan for a comparator at
            # depth 0 after the matching paren... simpler: snapshot+retry
            snapshot = self.position
            try:
                self._next()
                condition = self._parse_condition()
                self._expect_punct(")")
                return condition
            except TriggerSyntaxError:
                self.position = snapshot
        left = self._parse_sum()
        token = self._next()
        if token.kind != "PUNCT" or token.value not in Comparison._OPS:
            raise TriggerSyntaxError(f"expected a comparator, found {token.value!r}")
        right = self._parse_sum()
        return Comparison(token.value, left, right)

    # -- arithmetic -----------------------------------------------------------

    def _parse_sum(self) -> Expr:
        left = self._parse_term()
        while self._peek().kind == "PUNCT" and self._peek().value in ("+", "-"):
            op = self._next().value
            left = Arith(op, left, self._parse_term())
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self._peek().kind == "PUNCT" and self._peek().value in ("*", "/"):
            op = self._next().value
            left = Arith(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expr:
        token = self._next()
        if token.kind == "NUMBER":
            return Number(float(token.value))
        if token.kind == "NAME":
            if self.known_metrics is not None and token.value not in self.known_metrics:
                raise TriggerSyntaxError(f"unknown metric {token.value!r}")
            return Metric(token.value)
        if token == _Token("PUNCT", "("):
            inner = self._parse_sum()
            self._expect_punct(")")
            return inner
        if token == _Token("PUNCT", "-"):
            return Arith("-", Number(0.0), self._parse_factor())
        raise TriggerSyntaxError(f"expected a number or metric, found {token.value!r}")


def parse_trigger(
    source: str, known_metrics: Optional[Iterable[str]] = None
) -> ParsedTrigger:
    """Parse one trigger rule.

    >>> rule = parse_trigger("ON catalog WHEN score > 0.2 EVOLVE WITH psi = 0.1")
    >>> rule.target, rule.overrides
    ('catalog', {'psi': 0.1})
    """
    return _Parser(_tokenize(source), known_metrics).parse_rule()


def parse_triggers(
    source: str, known_metrics: Optional[Iterable[str]] = None
) -> List[ParsedTrigger]:
    """Parse a rule file: one rule per non-empty, non-``#`` line."""
    rules = []
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_trigger(stripped, known_metrics))
    return rules
