"""Clustering repository documents and extracting DTDs for them.

Section 2: "In the following we do not address the problem of
generating a DTD from documents with similar structures in the
repository [...] for such documents our approach or other approaches
already developed for extracting structural information from the
documents, as those described in Section 5, can be equivalently
applied."

This module closes that loop: documents that never reached the
similarity threshold of any DTD are grouped by structural similarity
(the preliminary clustering step the paper credits to [6]), and each
large-enough cluster gets a DTD inferred from its members (with the
XTRACT-style baseline, exactly one of the "approaches of Section 5").
:meth:`repro.core.engine.XMLSource.mine_repository` wires it into the
pipeline.

Document-to-document similarity is measured on root-to-leaf label paths
(a cheap, symmetric proxy: two documents are similar when they exercise
the same structural paths) — Jaccard over the path sets, weighted by
multiplicity.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.baselines.xtract import infer_dtd
from repro.dtd.dtd import DTD
from repro.xmltree.document import Document, Element


def _path_profile(document: Document) -> Counter:
    """Multiset of root-to-leaf tag paths (text leaves collapse to one
    ``#text`` marker so values do not matter)."""
    profile: Counter = Counter()

    def walk(element: Element, prefix: Tuple[str, ...]) -> None:
        path = prefix + (element.tag,)
        children = element.element_children()
        if not children:
            profile[path] += 1
            return
        for child in children:
            walk(child, path)

    walk(document.root, ())
    return profile


def document_similarity(left: Document, right: Document) -> float:
    """Symmetric structural similarity in [0, 1] (weighted path Jaccard).

    >>> from repro.xmltree.parser import parse_document
    >>> document_similarity(
    ...     parse_document("<a><b/><c/></a>"), parse_document("<a><b/><c/></a>")
    ... )
    1.0
    """
    left_profile = _path_profile(left)
    right_profile = _path_profile(right)
    intersection = sum((left_profile & right_profile).values())
    union = sum((left_profile | right_profile).values())
    if union == 0:
        return 1.0
    return intersection / union


class Cluster:
    """A group of structurally similar documents."""

    def __init__(self, seed: Document):
        self.documents: List[Document] = [seed]
        self._profile = _path_profile(seed)

    def similarity_to(self, document: Document) -> float:
        profile = _path_profile(document)
        intersection = sum((self._profile & profile).values())
        union = sum((self._profile | profile).values())
        return intersection / union if union else 1.0

    def add(self, document: Document) -> None:
        self.documents.append(document)
        # the cluster profile is the running union (keeps the cluster
        # from drifting toward its latest member)
        self._profile |= _path_profile(document)

    def __len__(self) -> int:
        return len(self.documents)

    def __repr__(self) -> str:
        return f"Cluster({len(self.documents)} documents)"


def cluster_documents(
    documents: Sequence[Document], threshold: float = 0.5
) -> List[Cluster]:
    """Greedy leader clustering: each document joins the first cluster
    it resembles at or above ``threshold``, else founds a new one.

    Deterministic in input order (the engine feeds repository order).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    clusters: List[Cluster] = []
    for document in documents:
        best_cluster = None
        best_similarity = threshold
        for cluster in clusters:
            similarity = cluster.similarity_to(document)
            if similarity >= best_similarity:
                best_cluster = cluster
                best_similarity = similarity
        if best_cluster is None:
            clusters.append(Cluster(document))
        else:
            best_cluster.add(document)
    return clusters


def extract_dtds(
    documents: Sequence[Document],
    threshold: float = 0.5,
    min_cluster_size: int = 3,
    name_prefix: str = "repo",
) -> List[Tuple[DTD, List[Document]]]:
    """Cluster documents and infer a DTD per large-enough cluster.

    Returns ``(dtd, members)`` pairs; members of too-small clusters are
    simply not covered (they stay in the repository).
    """
    results: List[Tuple[DTD, List[Document]]] = []
    index = 0
    for cluster in cluster_documents(documents, threshold):
        if len(cluster) < min_cluster_size:
            continue
        dtd = infer_dtd(cluster.documents, name=f"{name_prefix}{index}")
        results.append((dtd, cluster.documents))
        index += 1
    return results
