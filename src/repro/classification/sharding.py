"""DTD-set sharding by tag-vocabulary clusters.

The tier-3 bound (PR 1) already partitions DTD candidates by tag
vocabulary per document; :class:`ShardedClassifier` lifts the same
signal to the DTD *set*: DTDs whose vocabularies transitively overlap
form one shard, and classification consults only shards whose
vocabulary (or root tag, or ``#PCDATA``/``ANY`` capability) overlaps
the document.  A screened-out shard's DTDs provably score exactly 0.0
— the same four-condition argument that makes the indexed drain's
candidate query sound (see ``DrainQuery`` in
:mod:`repro.classification.stores` and DESIGN.md decision 12) — so
their names join the lazily-realized ranking tail and every observable
result stays bit-identical to the unsharded classifier.

Exact fallback: whenever the screen cannot soundly restrict the
candidate set — pruned ranking disabled, inexact semantics, document
beyond the DP depth guard, no shard screened out, or a best similarity
of 0.0 (a zero-score tie could alphabetically favour a DTD inside a
skipped shard) — the full unsharded path runs instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.classification.classifier import (
    ClassificationResult,
    Classifier,
    _DocumentCensus,
    profile_document,
)
from repro.dtd.dtd import DTD
from repro.perf import FastPathConfig, PerfCounters
from repro.similarity.tags import TagMatcher
from repro.similarity.triple import SimilarityConfig
from repro.xmltree.document import Document

#: a shard map as it travels on snapshots: member names per shard
ShardMap = Tuple[Tuple[str, ...], ...]


class _ShardData:
    """One vocabulary cluster's aggregate screening facts."""

    __slots__ = ("names", "vocabulary", "roots", "allows_text", "has_any")

    def __init__(self, names: Tuple[str, ...], bounds: Dict[str, object]):
        self.names = names
        vocabulary = frozenset().union(
            *(bounds[name].vocabulary for name in names)
        )
        self.vocabulary = vocabulary
        self.roots = frozenset(bounds[name].root for name in names)
        self.allows_text = any(bounds[name].allows_text for name in names)
        self.has_any = any(bounds[name].has_any for name in names)

    def overlaps(self, census: _DocumentCensus) -> bool:
        """True unless every DTD in this shard provably scores 0.0.

        Mirrors the :class:`~repro.classification.stores.DrainQuery`
        candidate conditions: matched vocabulary weight, root-vertex
        anchoring, text leaves against ``#PCDATA``, or ``ANY``.
        """
        if self.has_any:
            return True
        if census.root_tag in self.roots:
            return True
        if self.allows_text and census.text_count > 0:
            return True
        return not self.vocabulary.isdisjoint(census.tag_counts)


class ShardedClassifier(Classifier):
    """A :class:`Classifier` that screens DTD shards before ranking.

    Shards are recomputed lazily after any :meth:`add_dtd` /
    :meth:`replace_dtd` via deterministic union-find over vocabulary
    intersection, so an explicit ``shard_map`` (shipped on parallel
    snapshots) is only adopted when it covers exactly the current DTD
    names — otherwise it is recomputed, yielding the identical map.
    """

    def __init__(
        self,
        dtds: Iterable[DTD],
        threshold: float = 0.5,
        config: SimilarityConfig = SimilarityConfig(),
        tag_matcher: Optional[TagMatcher] = None,
        fastpath: Optional[FastPathConfig] = None,
        counters: Optional[PerfCounters] = None,
        shard_map: Optional[ShardMap] = None,
    ):
        self._shards: Optional[Tuple[_ShardData, ...]] = None
        super().__init__(dtds, threshold, config, tag_matcher, fastpath, counters)
        if shard_map is not None and {
            name for shard in shard_map for name in shard
        } == set(self._dtds):
            self._shards = tuple(
                _ShardData(tuple(shard), self._bounds) for shard in shard_map
            )

    # ------------------------------------------------------------------

    def add_dtd(self, dtd: DTD) -> None:
        super().add_dtd(dtd)
        self._shards = None

    def replace_dtd(self, dtd: DTD) -> None:
        super().replace_dtd(dtd)
        self._shards = None

    def _shard_data(self) -> Tuple[_ShardData, ...]:
        if self._shards is None:
            self._shards = self._recluster()
        return self._shards

    def shard_map(self) -> ShardMap:
        """The current shards as name tuples (snapshot/persistence form)."""
        return tuple(shard.names for shard in self._shard_data())

    def _recluster(self) -> Tuple[_ShardData, ...]:
        """Union-find over shared vocabulary tags, deterministically
        ordered (members sorted by name, shards by first member)."""
        names = sorted(self._dtds)
        parent = {name: name for name in names}

        def find(name: str) -> str:
            root = name
            while parent[root] != root:
                root = parent[root]
            while parent[name] != root:  # path compression
                parent[name], name = root, parent[name]
            return root

        def union(left: str, right: str) -> None:
            left, right = find(left), find(right)
            if left != right:
                parent[right] = left

        tag_owner: Dict[str, str] = {}
        for name in names:
            for tag in self._bounds[name].vocabulary:
                owner = tag_owner.setdefault(tag, name)
                if owner != name:
                    union(owner, name)
        groups: Dict[str, List[str]] = {}
        for name in names:
            groups.setdefault(find(name), []).append(name)
        ordered = sorted(groups.values(), key=lambda members: members[0])
        return tuple(
            _ShardData(tuple(members), self._bounds) for members in ordered
        )

    # ------------------------------------------------------------------

    def fanout_eligible(self) -> bool:
        """True when shard fan-out can be bit-identical to serial.

        The same preconditions that let :meth:`_classify_document` use
        the shard screen at all: more than one shard, pruned ranking
        on, and exact semantics.  (The remaining fallback conditions
        are per-document — see :meth:`fanout_route`.)
        """
        return len(self._shard_data()) > 1 and bool(
            self.fastpath.pruned_ranking and self._exact_semantics()
        )

    def fanout_route(self, document: Document) -> Optional[int]:
        """The single shard that can classify ``document`` remotely.

        Returns the shard index when *exactly one* shard overlaps the
        document and the DP depth guard holds — then a worker holding
        only that shard's DTDs evaluates the same candidate set, in the
        same order, as the serial sharded path.  Returns ``None`` for
        every document that must stay on the serial path: zero overlaps
        (the serial path screens nothing or everything and falls back),
        two or more overlaps (the candidate set spans shards), or a
        document at the depth guard (no sound screen).  A worker result
        with similarity 0.0 is likewise discarded by the merge, because
        serial breaks that tie across the full DTD set.
        """
        if not self.fanout_eligible():
            return None
        census = profile_document(document)
        if census.height >= self.config.max_depth:
            return None
        route: Optional[int] = None
        for index, shard in enumerate(self._shard_data()):
            if shard.overlaps(census):
                if route is not None:
                    return None
                route = index
        return route

    # ------------------------------------------------------------------

    def _classify_document(
        self, document: Document, census: Optional[_DocumentCensus] = None
    ) -> ClassificationResult:
        shards = self._shard_data()
        if len(shards) <= 1 or not (
            self.fastpath.pruned_ranking and self._exact_semantics()
        ):
            return super()._classify_document(document, census)
        if census is None:
            census = profile_document(document)
        if census.height >= self.config.max_depth:
            return super()._classify_document(document, census)
        candidates: List[str] = []
        screened: List[str] = []
        screened_shards = 0
        for shard in shards:
            if shard.overlaps(census):
                candidates.extend(shard.names)
            else:
                screened.extend(shard.names)
                screened_shards += 1
        if not screened or not candidates:
            return super()._classify_document(document, census)
        result = self._classify_pruned(
            document, census, candidates, tuple(screened)
        )
        if result.similarity <= 0.0:
            # all candidates scored 0.0 — a zero tie breaks on name
            # across the FULL DTD set, which may live in a skipped shard
            return super()._classify_document(document, census)
        self.counters.shard_skips += screened_shards
        return result
