"""Similarity-based classification against a set of DTDs.

"If a document, matched against each DTD in the source, does not
produce a similarity value above a fixed threshold, it is stored in a
separate repository, containing unclassified documents.  Otherwise, the
document is handled as an instance of the DTD for which the evaluation
produced the highest similarity value." (Section 2)

Fast paths (all exact — see ``docs/API.md``, "Performance
architecture"):

- **tier 1**: a valid document scores exactly 1.0 (Section 3.1:
  fullness of the global measure coincides with validity), so a
  linear-time automaton validation replaces the span DP and the
  per-element evaluation is synthesized as all-common triples;
- **tier 3**: :meth:`Classifier.classify` computes a cheap sound upper
  bound per DTD from tag-vocabulary overlap and evaluates DTDs
  best-bound-first, skipping every DTD whose bound cannot beat the
  current best (skipped similarities are still exact — the full
  ranking is realized lazily on first access).

Both tiers disable themselves when a thesaurus tag matcher is active or
the similarity weights are degenerate (``alpha`` or ``beta`` of 0), so
results are bit-identical with the fast paths on or off.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.classification.stores import (
    CandidateRow,
    DocumentProfile,
    DrainQuery,
    profile_document,
)
from repro.dtd import content_model as cm
from repro.dtd.automaton import Validator
from repro.dtd.dtd import DTD
from repro.errors import ClassificationError
from repro.perf import FastPathConfig, PerfCounters
from repro.similarity.evaluation import (
    DocumentEvaluation,
    evaluate_document,
    valid_document_evaluation,
)
from repro.similarity.matcher import StructureMatcher
from repro.similarity.tags import ExactTagMatcher, TagMatcher
from repro.similarity.triple import EvalTriple, SimilarityConfig
from repro.xmltree.document import Document

Ranking = List[Tuple[str, float]]


#: one cheap pass over a document, everything the bounds need — the
#: census now lives in :mod:`repro.classification.stores` as
#: :func:`profile_document` so the indexed store persists the exact
#: profile the scan path recomputes (this alias keeps internal naming)
_DocumentCensus = DocumentProfile


class _BoundData:
    """Per-DTD facts for the tier-3 upper bound (computed once)."""

    __slots__ = ("vocabulary", "allows_text", "has_any", "root")

    def __init__(self, dtd: DTD):
        vocabulary: Set[str] = set()
        allows_text = False
        has_any = False
        for decl in dtd:
            vocabulary |= decl.declared_labels()
            for node in decl.content.iter_preorder():
                if node.label == cm.PCDATA:
                    allows_text = True
                elif node.label == cm.ANY:
                    has_any = True
        self.vocabulary = frozenset(vocabulary)
        self.allows_text = allows_text
        self.has_any = has_any
        self.root = dtd.root

    def upper_bound(self, census: _DocumentCensus, config: SimilarityConfig) -> float:
        """A sound upper bound on the document's similarity.

        Element vertices whose tag no content model references can
        never score common (they are plus, with at least their vertex
        weight), text leaves need ``#PCDATA`` somewhere, and the root
        vertex is common only when it equals the DTD root.  With
        ``u`` such unmatchable weight and ``r`` the root minus, the
        evaluation of any alignment is at most
        ``E(u, r, W - u)`` because ``E`` is monotone (increasing in
        common, decreasing in plus/minus).  ``ANY`` declarations make
        everything matchable, so they yield the trivial bound 1.0.
        """
        if self.has_any:
            return 1.0
        unmatchable = 0.0
        vocabulary = self.vocabulary
        for tag, count in census.tag_counts.items():
            if tag not in vocabulary:
                unmatchable += count
        root_minus = 0.0
        if census.root_tag == self.root:
            if census.root_tag not in vocabulary:
                # the root vertex itself is anchored onto the DTD root
                # and scores common even when nothing references its tag
                unmatchable -= 1.0
        else:
            root_minus = 1.0
            if census.root_tag in vocabulary:
                # the root vertex is only ever compared to the DTD
                # root, so it is plus despite its tag being referenced
                unmatchable += 1.0
        if not self.allows_text:
            unmatchable += census.text_count
        return EvalTriple(
            plus=unmatchable, minus=root_minus, common=census.weight - unmatchable
        ).evaluate(config)

    def upper_bound_row(self, row: CandidateRow, config: SimilarityConfig) -> float:
        """:meth:`upper_bound` recomputed from a persisted profile row.

        Must agree with :meth:`upper_bound` bit-for-bit: the census
        loop accumulates integer tag counts into a float, which equals
        ``float(total_tags - matched)`` exactly (integer arithmetic,
        well under 2**53), and the root/text adjustments follow the
        same operation order.  Verified by the store differential
        tests.
        """
        if self.has_any:
            return 1.0
        unmatchable = float(row.total_tags - row.matched)
        root_minus = 0.0
        if row.root_tag == self.root:
            if row.root_tag not in self.vocabulary:
                unmatchable -= 1.0
        else:
            root_minus = 1.0
            if row.root_tag in self.vocabulary:
                unmatchable += 1.0
        if not self.allows_text:
            unmatchable += row.text_count
        return EvalTriple(
            plus=unmatchable, minus=root_minus, common=row.weight - unmatchable
        ).evaluate(config)


class ClassificationResult:
    """The outcome of classifying one document."""

    __slots__ = (
        "document",
        "dtd_name",
        "similarity",
        "evaluation",
        "_ranking",
        "evaluated",
        "pruned",
    )

    def __init__(
        self,
        document: Document,
        dtd_name: Optional[str],
        similarity: float,
        evaluation: Optional[DocumentEvaluation],
        ranking: Union[Ranking, Callable[[], Ranking]],
        evaluated: Optional[Ranking] = None,
        pruned: Tuple[str, ...] = (),
    ):
        self.document = document
        #: the selected DTD, or ``None`` when below threshold (repository)
        self.dtd_name = dtd_name
        #: similarity against the best DTD (even when below threshold)
        self.similarity = similarity
        #: full evaluation against the best DTD (None when no DTD exists)
        self.evaluation = evaluation
        self._ranking = ranking
        #: the ``(name, similarity)`` pairs actually scored (best first);
        #: equals the full ranking unless tier-3 pruning skipped DTDs
        self.evaluated = (
            evaluated if evaluated is not None
            else (ranking if not callable(ranking) else [])
        )
        #: DTD names whose exact score was pruned (realized lazily via
        #: :attr:`ranking`); picklable parallel workers ship these two
        #: fields instead of forcing the lazy realization
        self.pruned = pruned

    @property
    def ranking(self) -> Ranking:
        """All (dtd name, similarity) pairs, best first.

        When the pruned fast path skipped some DTDs, their exact
        similarities are computed lazily here on first access (against
        the DTD set as it was at classification time), so readers see
        the same full exact ranking the slow path produces.
        """
        if callable(self._ranking):
            self._ranking = self._ranking()
        return self._ranking

    @property
    def accepted(self) -> bool:
        return self.dtd_name is not None

    def __repr__(self) -> str:
        target = self.dtd_name if self.accepted else "<repository>"
        return f"ClassificationResult({target!r}, {self.similarity:.3f})"


class Classifier:
    """Ranks documents against a DTD set with a similarity threshold.

    Matchers are cached per DTD, so declaration-level work (automata,
    minimal weights) is shared across documents.

    >>> from repro.dtd.parser import parse_dtd
    >>> from repro.xmltree.parser import parse_document
    >>> classifier = Classifier(
    ...     [parse_dtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", name="A")],
    ...     threshold=0.5,
    ... )
    >>> classifier.classify(parse_document("<a><b>x</b></a>")).dtd_name
    'A'
    """

    def __init__(
        self,
        dtds: Iterable[DTD],
        threshold: float = 0.5,
        config: SimilarityConfig = SimilarityConfig(),
        tag_matcher: Optional[TagMatcher] = None,
        fastpath: Optional[FastPathConfig] = None,
        counters: Optional[PerfCounters] = None,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ClassificationError(
                f"threshold sigma must be in [0, 1], got {threshold}"
            )
        self.threshold = threshold
        self.config = config
        self.tag_matcher = tag_matcher
        self.fastpath = fastpath or FastPathConfig()
        self.counters = counters or PerfCounters()
        self._matchers: Dict[str, StructureMatcher] = {}
        self._validators: Dict[str, Validator] = {}
        self._bounds: Dict[str, _BoundData] = {}
        self._dtds: Dict[str, DTD] = {}
        for dtd in dtds:
            self.add_dtd(dtd)

    # ------------------------------------------------------------------

    def add_dtd(self, dtd: DTD) -> None:
        if dtd.name in self._dtds:
            raise ClassificationError(f"duplicate DTD name {dtd.name!r}")
        self._dtds[dtd.name] = dtd
        self._install_dtd(dtd)

    def replace_dtd(self, dtd: DTD) -> None:
        """Swap in an evolved DTD under the same name.

        The matcher (and with it every cached triple) is rebuilt from
        scratch, so an evolved DTD can never serve stale evaluations.
        """
        if dtd.name not in self._dtds:
            raise ClassificationError(f"unknown DTD name {dtd.name!r}")
        self._dtds[dtd.name] = dtd
        self._install_dtd(dtd)

    def _install_dtd(self, dtd: DTD) -> None:
        self._matchers[dtd.name] = StructureMatcher(
            dtd, self.config, self.tag_matcher, self.fastpath, self.counters
        )
        self._validators[dtd.name] = Validator(dtd)
        self._bounds[dtd.name] = _BoundData(dtd)

    def dtd_names(self) -> List[str]:
        return list(self._dtds)

    def dtd(self, name: str) -> DTD:
        return self._dtds[name]

    # ------------------------------------------------------------------
    # Fast-path applicability
    # ------------------------------------------------------------------

    def _exact_semantics(self) -> bool:
        """True when the fast paths' exactness preconditions hold.

        A thesaurus matcher lets renamed tags score common (so neither
        validity nor vocabulary overlap bounds the similarity), and a
        zero ``alpha``/``beta`` lets the DP tie-break onto optima that
        are not all-common.
        """
        exact_tags = self.tag_matcher is None or isinstance(
            self.tag_matcher, ExactTagMatcher
        )
        return exact_tags and self.config.alpha > 0 and self.config.beta > 0

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _score_with(
        self,
        matcher: StructureMatcher,
        validator: Validator,
        document: Document,
        tier1: bool,
    ) -> Tuple[float, bool]:
        """Exact similarity of one document against one DTD.

        Returns ``(similarity, short_circuited)``; the second flag is
        True when tier 1 proved the document valid (similarity exactly
        1.0) without running the span DP.
        """
        counters = self.counters
        if tier1:
            counters.validations += 1
            if validator.is_valid(document):
                counters.validity_short_circuits += 1
                return 1.0, True
        similarity = matcher.document_similarity(document.root)
        matcher.clear_cache()
        return similarity, False

    def acceptance_bound(
        self, document: Document, name: str
    ) -> Optional[float]:
        """A sound upper bound on ``document``'s similarity against one
        DTD, or ``None`` when no sound bound is available.

        This is the tier-3 vocabulary-overlap bound exposed for the
        pruned post-evolution drain: a repository document whose bound
        against the evolved DTD stays below ``sigma`` provably cannot
        be recovered by it.  Unavailable (``None``) under inexact
        semantics (thesaurus matcher, degenerate weights) or beyond the
        DP depth guard; an ``ANY`` declaration yields the trivial bound
        1.0, so callers never skip unsoundly.
        """
        if not self._exact_semantics():
            return None
        census = profile_document(document)
        if census.height >= self.config.max_depth:
            return None
        return self._bounds[name].upper_bound(census, self.config)

    def drain_query(self, name: str) -> Optional[DrainQuery]:
        """The pushed-down candidate conditions for an indexed pruned
        drain against one DTD, or ``None`` when the drain must scan.

        ``None`` mirrors the two cases where :meth:`acceptance_bound`
        cannot prune: inexact semantics (no sound bound at all) and an
        ``ANY`` declaration (trivial bound 1.0 for every document, so
        an index query would just select everything).  The per-document
        depth guard travels inside the query instead — documents at or
        beyond ``max_depth`` are always candidates.
        """
        if not self._exact_semantics():
            return None
        data = self._bounds[name]
        if data.has_any:
            return None
        return DrainQuery(
            vocabulary=tuple(sorted(data.vocabulary)),
            allows_text=data.allows_text,
            dtd_root=data.root,
            max_depth=self.config.max_depth,
        )

    def bound_from_row(self, name: str, row: CandidateRow) -> Optional[float]:
        """:meth:`acceptance_bound` recomputed from a persisted profile
        row — bit-identical to the census path, including the ``None``
        beyond the depth guard."""
        if row.height >= self.config.max_depth:
            return None
        return self._bounds[name].upper_bound_row(row, self.config)

    def rank(self, document: Document) -> Ranking:
        """Similarity of the document against every DTD, best first.

        Ties break on DTD name for determinism.  Always exact and
        complete (tier-3 pruning applies only to :meth:`classify`,
        which does not need every similarity eagerly).
        """
        if not self._dtds:
            raise ClassificationError("the classifier holds no DTDs")
        tier1 = self.fastpath.validity_short_circuit and self._exact_semantics()
        scores = [
            (name, self._score_with(
                self._matchers[name], self._validators[name], document, tier1
            )[0])
            for name in self._dtds
        ]
        return sorted(scores, key=lambda pair: (-pair[1], pair[0]))

    def classify(self, document: Document) -> ClassificationResult:
        """Pick the best DTD, or none when below the threshold ``sigma``."""
        if not self._dtds:
            raise ClassificationError("the classifier holds no DTDs")
        self.counters.documents_classified += 1
        return self._classify_document(document)

    def _classify_document(
        self, document: Document, census: Optional[_DocumentCensus] = None
    ) -> ClassificationResult:
        """The classification body behind :meth:`classify` (guard and
        counter already applied).  :class:`ShardedClassifier` overrides
        this to screen DTD shards first, falling back here when the
        screen cannot soundly restrict the candidate set."""
        tier3 = self.fastpath.pruned_ranking and self._exact_semantics()
        if tier3:
            if census is None:
                census = profile_document(document)
            # beyond max_depth the DP truncates recursion, deflating the
            # plus totals the bound relies on — fall back to full ranking
            tier3 = census.height < self.config.max_depth
        if not tier3:
            return self._classify_full(document)
        assert census is not None
        return self._classify_pruned(document, census, list(self._dtds), ())

    def _classify_full(self, document: Document) -> ClassificationResult:
        """The complete-ranking path (tier 3 inapplicable)."""
        tier1 = self.fastpath.validity_short_circuit and self._exact_semantics()
        short_circuited: Set[str] = set()
        evaluated = self.rank(document)
        best_name, best_similarity = evaluated[0]
        if tier1 and best_similarity == 1.0:
            # recover whether the winner was a validity short-circuit
            # (the validator is cached and linear, far cheaper than
            # re-running the DP-backed evaluation below)
            if self._validators[best_name].is_valid(document):
                short_circuited.add(best_name)
        return self._finish(document, evaluated, evaluated, (), short_circuited)

    def _classify_pruned(
        self,
        document: Document,
        census: _DocumentCensus,
        names: List[str],
        extra_pruned: Tuple[str, ...],
    ) -> ClassificationResult:
        """The tier-3 best-bound-first loop over ``names``.

        ``extra_pruned`` carries DTD names a caller already proved
        unable to score above 0.0 (shard screening); like bound-skipped
        names they join the lazily-realized ranking tail.
        """
        tier1 = self.fastpath.validity_short_circuit and self._exact_semantics()
        short_circuited: Set[str] = set()
        bounds = {
            name: self._bounds[name].upper_bound(census, self.config)
            for name in names
        }
        order = sorted(names, key=lambda name: (-bounds[name], name))
        evaluated: Ranking = []
        skipped: List[str] = []
        best_seen = float("-inf")
        for position, name in enumerate(order):
            if bounds[name] < best_seen:
                # bounds are non-increasing from here on: no later
                # DTD can reach, let alone beat, the current best
                skipped = order[position:]
                break
            similarity, shorted = self._score_with(
                self._matchers[name], self._validators[name], document, tier1
            )
            evaluated.append((name, similarity))
            if shorted:
                short_circuited.add(name)
            if similarity > best_seen:
                best_seen = similarity
        evaluated.sort(key=lambda pair: (-pair[1], pair[0]))
        if skipped:
            self.counters.bound_skips += len(skipped)
        pruned = tuple(skipped) + extra_pruned
        if pruned:
            ranking: Union[Ranking, Callable[[], Ranking]] = self.deferred_ranking(
                document, evaluated, pruned
            )
        else:
            ranking = evaluated
        return self._finish(document, evaluated, ranking, pruned, short_circuited)

    def _finish(
        self,
        document: Document,
        evaluated: Ranking,
        ranking: Union[Ranking, Callable[[], Ranking]],
        pruned: Tuple[str, ...],
        short_circuited: Set[str],
    ) -> ClassificationResult:
        """Apply the threshold and build the result."""
        best_name, best_similarity = evaluated[0]
        if best_similarity < self.threshold:
            return ClassificationResult(
                document, None, best_similarity, None, ranking,
                evaluated=evaluated, pruned=pruned,
            )
        evaluation = self._best_evaluation(
            document, best_name, best_name in short_circuited
        )
        return ClassificationResult(
            document, best_name, best_similarity, evaluation, ranking,
            evaluated=evaluated, pruned=pruned,
        )

    def deferred_ranking(
        self, document: Document, head: Ranking, pruned: Tuple[str, ...]
    ) -> Callable[[], Ranking]:
        """A callable realizing the exact full ranking lazily.

        ``head`` holds the already-scored pairs and ``pruned`` the DTD
        names tier-3 skipped.  The matchers and validators are captured
        *now* (an evolved DTD swapped in later must not leak into the
        realization), so the callable stays exact for the DTD set at
        classification time.  The parallel merge path rebuilds worker
        results through this, preserving the serial path's laziness.
        """
        snapshot = [
            (name, self._matchers[name], self._validators[name])
            for name in pruned
        ]
        tier1 = self.fastpath.validity_short_circuit and self._exact_semantics()
        head = list(head)

        def realize() -> Ranking:
            tail = [
                (name, self._score_with(matcher, validator, document, tier1)[0])
                for name, matcher, validator in snapshot
            ]
            return sorted(head + tail, key=lambda pair: (-pair[1], pair[0]))

        return realize

    def _best_evaluation(
        self, document: Document, name: str, short_circuited: bool
    ) -> DocumentEvaluation:
        """Evaluation against the winning DTD, synthesized when tier 1
        proved validity (and the depth guard allows exact synthesis)."""
        if (
            short_circuited
            and document.root.structure_info().height < self.config.max_depth
        ):
            self.counters.synthesized_evaluations += 1
            return valid_document_evaluation(document, self._dtds[name], self.config)
        return evaluate_document(
            document,
            self._dtds[name],
            self.config,
            matcher=self._matchers[name],
        )
