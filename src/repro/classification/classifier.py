"""Similarity-based classification against a set of DTDs.

"If a document, matched against each DTD in the source, does not
produce a similarity value above a fixed threshold, it is stored in a
separate repository, containing unclassified documents.  Otherwise, the
document is handled as an instance of the DTD for which the evaluation
produced the highest similarity value." (Section 2)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dtd.dtd import DTD
from repro.errors import ClassificationError
from repro.similarity.evaluation import DocumentEvaluation, evaluate_document
from repro.similarity.matcher import StructureMatcher
from repro.similarity.tags import TagMatcher
from repro.similarity.triple import SimilarityConfig
from repro.xmltree.document import Document


class ClassificationResult:
    """The outcome of classifying one document."""

    __slots__ = ("document", "dtd_name", "similarity", "evaluation", "ranking")

    def __init__(
        self,
        document: Document,
        dtd_name: Optional[str],
        similarity: float,
        evaluation: Optional[DocumentEvaluation],
        ranking: List[Tuple[str, float]],
    ):
        self.document = document
        #: the selected DTD, or ``None`` when below threshold (repository)
        self.dtd_name = dtd_name
        #: similarity against the best DTD (even when below threshold)
        self.similarity = similarity
        #: full evaluation against the best DTD (None when no DTD exists)
        self.evaluation = evaluation
        #: all (dtd name, similarity) pairs, best first
        self.ranking = ranking

    @property
    def accepted(self) -> bool:
        return self.dtd_name is not None

    def __repr__(self) -> str:
        target = self.dtd_name if self.accepted else "<repository>"
        return f"ClassificationResult({target!r}, {self.similarity:.3f})"


class Classifier:
    """Ranks documents against a DTD set with a similarity threshold.

    Matchers are cached per DTD, so declaration-level work (automata,
    minimal weights) is shared across documents.

    >>> from repro.dtd.parser import parse_dtd
    >>> from repro.xmltree.parser import parse_document
    >>> classifier = Classifier(
    ...     [parse_dtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", name="A")],
    ...     threshold=0.5,
    ... )
    >>> classifier.classify(parse_document("<a><b>x</b></a>")).dtd_name
    'A'
    """

    def __init__(
        self,
        dtds: Iterable[DTD],
        threshold: float = 0.5,
        config: SimilarityConfig = SimilarityConfig(),
        tag_matcher: Optional[TagMatcher] = None,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ClassificationError(
                f"threshold sigma must be in [0, 1], got {threshold}"
            )
        self.threshold = threshold
        self.config = config
        self.tag_matcher = tag_matcher
        self._matchers: Dict[str, StructureMatcher] = {}
        self._dtds: Dict[str, DTD] = {}
        for dtd in dtds:
            self.add_dtd(dtd)

    # ------------------------------------------------------------------

    def add_dtd(self, dtd: DTD) -> None:
        if dtd.name in self._dtds:
            raise ClassificationError(f"duplicate DTD name {dtd.name!r}")
        self._dtds[dtd.name] = dtd
        self._matchers[dtd.name] = StructureMatcher(
            dtd, self.config, self.tag_matcher
        )

    def replace_dtd(self, dtd: DTD) -> None:
        """Swap in an evolved DTD under the same name."""
        if dtd.name not in self._dtds:
            raise ClassificationError(f"unknown DTD name {dtd.name!r}")
        self._dtds[dtd.name] = dtd
        self._matchers[dtd.name] = StructureMatcher(
            dtd, self.config, self.tag_matcher
        )

    def dtd_names(self) -> List[str]:
        return list(self._dtds)

    def dtd(self, name: str) -> DTD:
        return self._dtds[name]

    # ------------------------------------------------------------------

    def rank(self, document: Document) -> List[Tuple[str, float]]:
        """Similarity of the document against every DTD, best first.

        Ties break on DTD name for determinism.
        """
        if not self._dtds:
            raise ClassificationError("the classifier holds no DTDs")
        scores = [
            (name, matcher.document_similarity(document.root))
            for name, matcher in self._matchers.items()
        ]
        for matcher in self._matchers.values():
            matcher.clear_cache()
        return sorted(scores, key=lambda pair: (-pair[1], pair[0]))

    def classify(self, document: Document) -> ClassificationResult:
        """Pick the best DTD, or none when below the threshold ``sigma``."""
        ranking = self.rank(document)
        best_name, best_similarity = ranking[0]
        if best_similarity < self.threshold:
            return ClassificationResult(
                document, None, best_similarity, None, ranking
            )
        evaluation = evaluate_document(
            document,
            self._dtds[best_name],
            self.config,
            matcher=self._matchers[best_name],
        )
        return ClassificationResult(
            document, best_name, best_similarity, evaluation, ranking
        )
