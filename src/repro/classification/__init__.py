"""Flexible document classification (Sections 1 and 2).

"Each document entering the database is classified against the set of
DTDs the database schema consists of, to determine the DTD in the set
best describing the structure of the document. [...] we rely on a more
flexible classification approach [2], based on an algorithm to measure
the structural similarity between a document and a DTD that produces a
numeric rank in the range [0, 1]."

- :class:`~repro.classification.classifier.Classifier` ranks a document
  against every DTD of the source and applies the threshold ``sigma``;
- :class:`~repro.classification.repository.Repository` holds the
  documents no DTD describes well enough, for later re-classification
  against the evolved DTD set;
- :mod:`repro.classification.stores` supplies the pluggable storage
  backends the repository delegates to (in-memory or spill-to-disk).
"""

from repro.classification.classifier import Classifier, ClassificationResult
from repro.classification.repository import Repository
from repro.classification.sharding import ShardedClassifier
from repro.classification.stores import (
    DocumentStore,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    make_store,
)

__all__ = [
    "Classifier",
    "ClassificationResult",
    "ShardedClassifier",
    "Repository",
    "DocumentStore",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "make_store",
]
