"""The repository of unclassified documents (Section 2).

Documents whose best similarity falls below ``sigma`` wait here.
"After the evolution phase, the documents in the repository are
classified again against the restructured set of DTDs in order to check
whether the similarity is now above the threshold ``sigma`` for some DTD
in the source so that the document can be considered as instance of such
DTD."

The repository itself is policy only; the actual document storage is a
pluggable :class:`~repro.classification.stores.DocumentStore` (in-memory
by default, spill-to-disk via
:class:`~repro.classification.stores.JsonlStore`).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.classification.stores import (
    CandidateRow,
    DocumentStore,
    DrainPredicate,
    DrainQuery,
    MemoryStore,
)
from repro.xmltree.document import Document


class Repository:
    """An ordered store of documents no DTD currently describes."""

    def __init__(self, store: Optional[DocumentStore] = None):
        self._store: DocumentStore = store if store is not None else MemoryStore()

    @property
    def store(self) -> DocumentStore:
        """The backing :class:`DocumentStore`."""
        return self._store

    @property
    def supports_indexed_drain(self) -> bool:
        """True when the backing store can answer a pruned drain with an
        index query (see :class:`~repro.classification.stores.SqliteStore`)
        instead of a whole-repository scan."""
        return bool(getattr(self._store, "supports_indexed_drain", False))

    def candidates(self, query: DrainQuery) -> List[Tuple[int, CandidateRow]]:
        """Index-selected ``(insertion id, profile row)`` candidate pairs
        for one DTD's pruned drain, in insertion order (indexed stores
        only)."""
        return self._store.candidates(query)

    def fetch(self, ids: Sequence[int]) -> List[Document]:
        """The documents behind the given insertion ids, in id order
        (indexed stores only)."""
        return self._store.fetch(ids)

    def remove(self, ids: Sequence[int]) -> None:
        """Delete the documents behind the given insertion ids; all other
        documents keep their order (indexed stores only)."""
        self._store.remove(ids)

    def add(self, document: Document) -> None:
        self._store.add(document)

    def add_many(self, documents: Iterable[Document]) -> None:
        """Bulk deposit: one flush/transaction on capable stores, a plain
        loop of :meth:`add` on stores without the capability."""
        bulk_add = getattr(self._store, "add_many", None)
        if bulk_add is not None:
            bulk_add(documents)
        else:
            for document in documents:
                self._store.add(document)

    def bulk(self):
        """A batched-ingestion window: per-document durability work is
        deferred until the window closes on stores that support it, and
        a no-op context manager otherwise."""
        window = getattr(self._store, "bulk", None)
        return window() if window is not None else nullcontext(self)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._store)

    def is_empty(self) -> bool:
        return len(self._store) == 0

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        """Remove and return documents, for re-triage after an evolution.

        The one drain semantics of the store protocol: with no predicate
        every held document is removed and returned (the engine's drain —
        each document is then classified exactly once per pass); with an
        ``accepts`` predicate only matching documents are removed, and
        the rest stay, in order.
        """
        return self._store.drain(accepts)

    def clear(self) -> None:
        self._store.clear()

    def __repr__(self) -> str:
        return f"Repository({len(self._store)} documents)"
