"""The repository of unclassified documents (Section 2).

Documents whose best similarity falls below ``sigma`` wait here.
"After the evolution phase, the documents in the repository are
classified again against the restructured set of DTDs in order to check
whether the similarity is now above the threshold ``sigma`` for some DTD
in the source so that the document can be considered as instance of such
DTD."
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from repro.xmltree.document import Document


class Repository:
    """An ordered store of documents no DTD currently describes."""

    def __init__(self):
        self._documents: List[Document] = []

    def add(self, document: Document) -> None:
        self._documents.append(document)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def is_empty(self) -> bool:
        return not self._documents

    def drain_if(
        self, accepts: Callable[[Document], bool]
    ) -> Tuple[List[Document], int]:
        """Remove and return the documents ``accepts`` now classifies.

        Returns (accepted documents, number still held).  Used after
        every evolution to re-try the repository against the evolved
        DTD set.
        """
        accepted: List[Document] = []
        remaining: List[Document] = []
        for document in self._documents:
            if accepts(document):
                accepted.append(document)
            else:
                remaining.append(document)
        self._documents = remaining
        return accepted, len(remaining)

    def take_all(self) -> List[Document]:
        """Remove and return every held document (drain for re-triage).

        Unlike :meth:`drain_if`, the caller decides each document's
        fate — used by the engine to classify each repository document
        exactly once per drain.
        """
        documents = self._documents
        self._documents = []
        return documents

    def clear(self) -> None:
        self._documents.clear()

    def __repr__(self) -> str:
        return f"Repository({len(self._documents)} documents)"
