"""Pluggable document stores backing the repository.

The repository of Section 2 is, operationally, an ordered multiset of
documents with exactly three lifecycle operations: *deposit* (a document
no DTD describes well enough), *inspection* (iteration, for snapshots
and clustering), and *drain* (remove documents for re-classification
after an evolution).  :class:`DocumentStore` captures that contract so
the backing representation can vary without touching the pipeline:

- :class:`MemoryStore` — a plain in-process list (the seed behaviour);
- :class:`JsonlStore` — spill-to-disk, one JSON-encoded XML document per
  line, so a very large repository does not live in RAM;
- :class:`SqliteStore` — spill-to-disk with a persistent inverted
  tag→document index, so the pruned post-evolution drain becomes an
  index lookup instead of a whole-repository scan.

Drain semantics (the single, consolidated API): ``drain(accepts=None)``
removes and returns the documents ``accepts`` matches — all of them when
``accepts`` is ``None`` — while non-matching documents stay, in order.

Indexed capability (optional — duck-typed via
``supports_indexed_drain``): a store that persists each document's
tag-vocabulary profile can answer :meth:`SqliteStore.candidates` — the
sound over-approximation of documents whose tier-3 acceptance bound
against one DTD may be non-zero — plus :meth:`SqliteStore.fetch` and
:meth:`SqliteStore.remove` by insertion id.  Plain stores simply lack
the attribute and the drain falls back to the scan path.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import warnings
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

try:  # Protocol is typing-only plumbing; 3.9+ always has it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - pre-3.8 fallback, never hit
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.xmltree.document import Document, Element
from repro.xmltree.parser import parse_document
from repro.xmltree.serializer import serialize_document

#: what an ``accepts`` predicate looks like
DrainPredicate = Callable[[Document], bool]


class DocumentProfile(NamedTuple):
    """Everything the tier-3 vocabulary-overlap bound needs, from one
    cheap pass over a document.

    This is the single census implementation shared by the classifier
    (``_DocumentCensus`` is an alias) and the indexed store, so the
    profile persisted at :meth:`SqliteStore.add` time is byte-for-byte
    the census the scan path would recompute at drain time.
    """

    tag_counts: Dict[str, int]
    text_count: int
    weight: float
    height: int
    root_tag: str

    @property
    def total_tags(self) -> int:
        return sum(self.tag_counts.values())


def profile_document(document: Document) -> DocumentProfile:
    """One cheap pass over a document: everything the bounds need."""
    root = document.root
    tag_counts: Dict[str, int] = {}
    text_count = 0
    stack = [root]
    while stack:
        element = stack.pop()
        tag_counts[element.tag] = tag_counts.get(element.tag, 0) + 1
        for child in element.children:
            if isinstance(child, Element):
                stack.append(child)
            elif child.value.strip():
                text_count += 1
    info = root.structure_info()
    return DocumentProfile(
        tag_counts=tag_counts,
        text_count=text_count,
        weight=info.weight,
        height=info.height,
        root_tag=root.tag,
    )


class DrainQuery(NamedTuple):
    """The candidate conditions of one DTD, pushed down into the store.

    A stored document's acceptance bound against the DTD is provably
    exactly 0.0 — hence safely skippable for any ``sigma > 0`` — unless
    at least one of these holds:

    - some document tag is in ``vocabulary`` (matched weight > 0);
    - ``height >= max_depth`` (no sound bound: must be classified);
    - ``root_tag == dtd_root`` (the root vertex anchors common weight);
    - ``allows_text`` and the document has non-whitespace text leaves.

    ``candidates`` returns exactly the union of those four sets, in
    insertion order, with the per-document matched-tag total so the
    caller can recompute the exact bound in Python (never SQL floats).
    """

    vocabulary: Tuple[str, ...]
    allows_text: bool
    dtd_root: str
    max_depth: int


class CandidateRow(NamedTuple):
    """One candidate's persisted profile, as the bound consumes it."""

    total_tags: int
    matched: int
    text_count: int
    weight: float
    height: int
    root_tag: str


@runtime_checkable
class DocumentStore(Protocol):
    """The storage contract behind :class:`~repro.classification.repository.Repository`.

    Implementations must preserve insertion order and must not copy
    semantics: a drained document is *gone* from the store (disk-backed
    stores return structurally identical re-parsed documents).
    """

    def add(self, document: Document) -> None:
        """Append one document."""

    def __len__(self) -> int:
        """Number of documents currently held."""

    def __iter__(self) -> Iterator[Document]:
        """Iterate the held documents in insertion order (no removal)."""

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        """Remove and return matching documents (all when ``accepts`` is
        ``None``); non-matching documents stay, in order."""

    def clear(self) -> None:
        """Discard every held document."""


class MemoryStore:
    """The in-RAM store — a plain ordered list (the seed behaviour)."""

    def __init__(self) -> None:
        self._documents: List[Document] = []

    def add(self, document: Document) -> None:
        self._documents.append(document)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        if accepts is None:
            drained = self._documents
            self._documents = []
            return drained
        drained: List[Document] = []
        remaining: List[Document] = []
        for document in self._documents:
            (drained if accepts(document) else remaining).append(document)
        self._documents = remaining
        return drained

    def clear(self) -> None:
        self._documents.clear()

    def __repr__(self) -> str:
        return f"MemoryStore({len(self._documents)} documents)"


class JsonlStore:
    """A spill-to-disk store: one JSON-encoded XML document per line.

    Documents are serialized on :meth:`add` and re-parsed on access, so
    only a line count lives in RAM; a million-document repository costs
    a file, not a heap.  Opening an existing path resumes it (the line
    count is recovered by scanning once).

    Appends go through a lazily-opened handle held until :meth:`close`
    (or until the file is replaced by a drain), so a deposit burst does
    not reopen the file per document.  :meth:`drain` streams the file
    line by line — kept lines are copied verbatim to a sibling temp
    file that atomically replaces the original — so draining never
    materializes the whole repository in RAM.

    When ``path`` is omitted a private temporary file is created and
    removed again by :meth:`close`.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-repository-", suffix=".jsonl")
            os.close(handle)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        self._count = 0
        self._append: Optional[TextIO] = None
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as lines:
                self._count = sum(1 for line in lines if line.strip())
        else:  # make the file exist so iteration/drain never special-case
            open(path, "w", encoding="utf-8").close()

    def _close_append(self) -> None:
        # after os.replace the old handle would write to a deleted
        # inode, so every path that replaces/truncates the file closes
        # the append handle first
        if self._append is not None:
            self._append.close()
            self._append = None

    def add(self, document: Document) -> None:
        xml = serialize_document(document, xml_declaration=False)
        if self._append is None:
            self._append = open(self.path, "a", encoding="utf-8")
        self._append.write(json.dumps(xml) + "\n")
        # keep on-disk state current so concurrent readers (resume,
        # snapshots taken via a second store on the same path) see it
        self._append.flush()
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Document]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    yield parse_document(json.loads(line))

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        self._close_append()
        drained: List[Document] = []
        remaining = 0
        keep_path = self.path + ".drain-tmp"
        with open(self.path, "r", encoding="utf-8") as lines, open(
            keep_path, "w", encoding="utf-8"
        ) as keep:
            for line in lines:
                if not line.strip():
                    continue
                document = parse_document(json.loads(line))
                if accepts is None or accepts(document):
                    drained.append(document)
                else:
                    keep.write(line)
                    remaining += 1
        os.replace(keep_path, self.path)
        self._count = remaining
        return drained

    def clear(self) -> None:
        self._close_append()
        open(self.path, "w", encoding="utf-8").close()
        self._count = 0

    def close(self) -> None:
        """Delete the backing file if this store created it."""
        self._close_append()
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)
        self._count = 0

    def __repr__(self) -> str:
        return f"JsonlStore({self._count} documents at {self.path!r})"


class SqliteStore:
    """A spill-to-disk store with a persistent inverted tag index.

    Each document is persisted alongside its :class:`DocumentProfile`
    (tag vocabulary with counts, text-leaf count, weight, height, root
    tag) under a monotonically increasing insertion id.  The ``tags``
    table is the inverted tag→document index that lets the pruned
    post-evolution drain select candidate documents with an index query
    (:meth:`candidates`) instead of scanning every document.

    Opening an existing path resumes it — the index is already on disk,
    so resume costs a row count, not a rebuild.  When ``path`` is
    omitted a private temporary database is created and removed again
    by :meth:`close`.
    """

    #: advertises the indexed-drain capability (duck-typed by DrainStage)
    supports_indexed_drain = True

    _SCHEMA = (
        """
        CREATE TABLE IF NOT EXISTS documents (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            xml TEXT NOT NULL,
            total_tags INTEGER NOT NULL,
            text_count INTEGER NOT NULL,
            weight REAL NOT NULL,
            height INTEGER NOT NULL,
            root_tag TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS tags (
            doc_id INTEGER NOT NULL REFERENCES documents(id) ON DELETE CASCADE,
            tag TEXT NOT NULL,
            count INTEGER NOT NULL,
            PRIMARY KEY (tag, doc_id)
        ) WITHOUT ROWID
        """,
        "CREATE INDEX IF NOT EXISTS idx_tags_doc ON tags(doc_id)",
        "CREATE INDEX IF NOT EXISTS idx_documents_height ON documents(height)",
        "CREATE INDEX IF NOT EXISTS idx_documents_root ON documents(root_tag)",
        "CREATE INDEX IF NOT EXISTS idx_documents_text ON documents(text_count)",
    )

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-repository-", suffix=".sqlite")
            os.close(handle)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        # check_same_thread=False: the store is handed between threads
        # whose access is already externally serialized (parallel-batch
        # drains, serve mode's single-writer executor) — never used from
        # two threads at once, so sqlite's per-thread pinning would only
        # forbid safe usage
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute("PRAGMA foreign_keys = ON")
        # committed transactions survive a *process* crash either way;
        # synchronous=OFF only trades OS-crash durability for not
        # paying an fsync per deposit, which is the right trade for a
        # re-buildable repository spill
        self._connection.execute("PRAGMA synchronous = OFF")
        for statement in self._SCHEMA:
            self._connection.execute(statement)
        self._connection.commit()
        row = self._connection.execute("SELECT COUNT(*) FROM documents").fetchone()
        self._count = int(row[0])

    # -- plain DocumentStore contract ----------------------------------

    def add(self, document: Document) -> None:
        xml = serialize_document(document, xml_declaration=False)
        profile = profile_document(document)
        cursor = self._connection.execute(
            "INSERT INTO documents (xml, total_tags, text_count, weight, height, root_tag)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                xml,
                profile.total_tags,
                profile.text_count,
                profile.weight,
                profile.height,
                profile.root_tag,
            ),
        )
        doc_id = cursor.lastrowid
        self._connection.executemany(
            "INSERT INTO tags (doc_id, tag, count) VALUES (?, ?, ?)",
            [(doc_id, tag, count) for tag, count in profile.tag_counts.items()],
        )
        self._connection.commit()
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Document]:
        for (xml,) in self._connection.execute(
            "SELECT xml FROM documents ORDER BY id"
        ):
            yield parse_document(xml)

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        if accepts is None:
            drained = list(self)
            self.clear()
            return drained
        drained: List[Document] = []
        removed: List[int] = []
        for doc_id, xml in self._connection.execute(
            "SELECT id, xml FROM documents ORDER BY id"
        ).fetchall():
            document = parse_document(xml)
            if accepts(document):
                drained.append(document)
                removed.append(doc_id)
        if removed:
            self.remove(removed)
        return drained

    def clear(self) -> None:
        self._connection.execute("DELETE FROM tags")
        self._connection.execute("DELETE FROM documents")
        self._connection.commit()
        self._count = 0

    def close(self) -> None:
        """Close the connection; delete the file if this store owns it."""
        self._connection.close()
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)
        self._count = 0

    # -- indexed capability --------------------------------------------

    def index_rows(self) -> int:
        """Number of rows in the inverted tag index (snapshot metadata)."""
        row = self._connection.execute("SELECT COUNT(*) FROM tags").fetchone()
        return int(row[0])

    def index_metadata(self) -> Dict[str, object]:
        """Index description persisted into format-3 snapshots."""
        return {
            "kind": "tag-vocabulary",
            "rows": self.index_rows(),
            "documents": self._count,
        }

    def candidates(self, query: DrainQuery) -> List[Tuple[int, CandidateRow]]:
        """The sound candidate set for one DTD's pruned drain.

        Returns ``(insertion id, profile row)`` pairs in insertion
        order for exactly the documents matching at least one
        :class:`DrainQuery` condition; every other document provably
        has acceptance bound 0.0.  ``matched`` is the summed count of
        document tags inside the DTD vocabulary — an exact integer, so
        the caller reproduces the scan path's bound arithmetic
        bit-for-bit in Python.
        """
        connection = self._connection
        connection.execute(
            "CREATE TEMP TABLE IF NOT EXISTS drain_vocab (tag TEXT PRIMARY KEY)"
        )
        connection.execute("DELETE FROM drain_vocab")
        connection.executemany(
            "INSERT OR IGNORE INTO drain_vocab (tag) VALUES (?)",
            [(tag,) for tag in query.vocabulary],
        )
        rows = connection.execute(
            """
            SELECT d.id, d.total_tags, COALESCE(m.matched, 0), d.text_count,
                   d.weight, d.height, d.root_tag
            FROM documents d
            JOIN (
                SELECT DISTINCT t.doc_id AS id
                FROM tags t JOIN drain_vocab v ON v.tag = t.tag
                UNION SELECT id FROM documents WHERE height >= :max_depth
                UNION SELECT id FROM documents WHERE root_tag = :root
                UNION SELECT id FROM documents WHERE text_count > 0 AND :allows_text
            ) hits ON hits.id = d.id
            LEFT JOIN (
                SELECT t.doc_id, SUM(t.count) AS matched
                FROM tags t JOIN drain_vocab v ON v.tag = t.tag
                GROUP BY t.doc_id
            ) m ON m.doc_id = d.id
            ORDER BY d.id
            """,
            {
                "max_depth": query.max_depth,
                "root": query.dtd_root,
                "allows_text": 1 if query.allows_text else 0,
            },
        ).fetchall()
        connection.execute("DELETE FROM drain_vocab")
        return [
            (
                int(doc_id),
                CandidateRow(
                    total_tags=int(total),
                    matched=int(matched),
                    text_count=int(text),
                    weight=float(weight),
                    height=int(height),
                    root_tag=root_tag,
                ),
            )
            for doc_id, total, matched, text, weight, height, root_tag in rows
        ]

    def fetch(self, ids: Sequence[int]) -> List[Document]:
        """Parse and return the documents with the given insertion ids,
        in insertion-id order (one batched query per 500 ids)."""
        documents: List[Document] = []
        ids = sorted(ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ",".join("?" for _ in chunk)
            for _, xml in self._connection.execute(
                f"SELECT id, xml FROM documents WHERE id IN ({placeholders})"
                " ORDER BY id",
                chunk,
            ):
                documents.append(parse_document(xml))
        return documents

    def remove(self, ids: Sequence[int]) -> None:
        """Delete the documents (and their index rows) with these ids;
        every other document keeps its id, hence its insertion order."""
        removed = 0
        ids = list(ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ",".join("?" for _ in chunk)
            self._connection.execute(
                f"DELETE FROM tags WHERE doc_id IN ({placeholders})", chunk
            )
            cursor = self._connection.execute(
                f"DELETE FROM documents WHERE id IN ({placeholders})", chunk
            )
            removed += cursor.rowcount
        self._connection.commit()
        self._count -= removed

    def __repr__(self) -> str:
        return f"SqliteStore({self._count} documents at {self.path!r})"


#: the named backends ``make_store`` (and the CLI ``--store`` flag) accept
STORE_KINDS = ("memory", "jsonl", "sqlite")


def store_kind(store: DocumentStore) -> str:
    """The snapshot tag for a store instance.

    Unknown third-party backends still persist as ``memory`` (the
    documents themselves are always inlined in the snapshot, so nothing
    is lost) — but loudly, so snapshots don't silently lie about their
    store: a :class:`RuntimeWarning` carries the backend's repr.
    """
    if isinstance(store, SqliteStore):
        return "sqlite"
    if isinstance(store, JsonlStore):
        return "jsonl"
    if isinstance(store, MemoryStore):
        return "memory"
    warnings.warn(
        f"unknown document-store backend {store!r}: the snapshot records it "
        "as 'memory' and a load will not recreate the custom backend "
        "(pass store= explicitly when loading)",
        RuntimeWarning,
        stacklevel=2,
    )
    return "memory"


def make_store(
    spec: Union[None, str, DocumentStore] = None, path: Optional[str] = None
) -> DocumentStore:
    """Resolve a store spec: ``None``/``"memory"`` → :class:`MemoryStore`,
    ``"jsonl"`` → :class:`JsonlStore`, ``"sqlite"`` → :class:`SqliteStore`
    (each optionally at ``path``), and any :class:`DocumentStore`
    instance passes through unchanged."""
    if spec is None or spec == "memory":
        return MemoryStore()
    if spec == "jsonl":
        return JsonlStore(path)
    if spec == "sqlite":
        return SqliteStore(path)
    if isinstance(spec, str):
        raise ValueError(
            f"unknown store kind {spec!r} (expected one of {', '.join(STORE_KINDS)})"
        )
    return spec
