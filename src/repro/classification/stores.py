"""Pluggable document stores backing the repository.

The repository of Section 2 is, operationally, an ordered multiset of
documents with exactly three lifecycle operations: *deposit* (a document
no DTD describes well enough), *inspection* (iteration, for snapshots
and clustering), and *drain* (remove documents for re-classification
after an evolution).  :class:`DocumentStore` captures that contract so
the backing representation can vary without touching the pipeline:

- :class:`MemoryStore` — a plain in-process list (the seed behaviour);
- :class:`JsonlStore` — spill-to-disk, one JSON-encoded XML document per
  line across a compacting sequence of segment files, so a very large
  repository neither lives in RAM nor grows without bound under
  sustained deposit/drain churn;
- :class:`SqliteStore` — spill-to-disk with a persistent inverted
  tag→document index, so the pruned post-evolution drain becomes an
  index lookup instead of a whole-repository scan.

Drain semantics (the single, consolidated API): ``drain(accepts=None)``
removes and returns the documents ``accepts`` matches — all of them when
``accepts`` is ``None`` — while non-matching documents stay, in order.

Write-path throughput: every backend accepts :meth:`add_many` (the bulk
contract — semantically a loop of :meth:`add`, but batched under one
flush/transaction where the backend can) and a nestable ``bulk()``
context manager that defers per-document durability work (the jsonl
flush, the sqlite commit) until the outermost window closes.  Callers
that only know the protocol go through
:meth:`~repro.classification.repository.Repository.add_many` /
``Repository.bulk``, which degrade to the per-document path for stores
without the capability.

Indexed capability (optional — duck-typed via
``supports_indexed_drain``): a store that persists each document's
tag-vocabulary profile can answer :meth:`SqliteStore.candidates` — the
sound over-approximation of documents whose tier-3 acceptance bound
against one DTD may be non-zero — plus :meth:`SqliteStore.fetch` and
:meth:`SqliteStore.remove` by insertion id.  Plain stores simply lack
the attribute and the drain falls back to the scan path.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import tempfile
import warnings
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    TextIO,
    Tuple,
    Union,
)

try:  # Protocol is typing-only plumbing; 3.9+ always has it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - pre-3.8 fallback, never hit
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.xmltree.document import Document, Element
from repro.xmltree.parser import parse_document
from repro.xmltree.serializer import serialize_document

#: what an ``accepts`` predicate looks like
DrainPredicate = Callable[[Document], bool]


class DocumentProfile(NamedTuple):
    """Everything the tier-3 vocabulary-overlap bound needs, from one
    cheap pass over a document.

    This is the single census implementation shared by the classifier
    (``_DocumentCensus`` is an alias) and the indexed store, so the
    profile persisted at :meth:`SqliteStore.add` time is byte-for-byte
    the census the scan path would recompute at drain time.
    """

    tag_counts: Dict[str, int]
    text_count: int
    weight: float
    height: int
    root_tag: str

    @property
    def total_tags(self) -> int:
        return sum(self.tag_counts.values())


def profile_document(document: Document) -> DocumentProfile:
    """One cheap pass over a document: everything the bounds need."""
    root = document.root
    tag_counts: Dict[str, int] = {}
    text_count = 0
    stack = [root]
    while stack:
        element = stack.pop()
        tag_counts[element.tag] = tag_counts.get(element.tag, 0) + 1
        for child in element.children:
            if isinstance(child, Element):
                stack.append(child)
            elif child.value.strip():
                text_count += 1
    info = root.structure_info()
    return DocumentProfile(
        tag_counts=tag_counts,
        text_count=text_count,
        weight=info.weight,
        height=info.height,
        root_tag=root.tag,
    )


class DrainQuery(NamedTuple):
    """The candidate conditions of one DTD, pushed down into the store.

    A stored document's acceptance bound against the DTD is provably
    exactly 0.0 — hence safely skippable for any ``sigma > 0`` — unless
    at least one of these holds:

    - some document tag is in ``vocabulary`` (matched weight > 0);
    - ``height >= max_depth`` (no sound bound: must be classified);
    - ``root_tag == dtd_root`` (the root vertex anchors common weight);
    - ``allows_text`` and the document has non-whitespace text leaves.

    ``candidates`` returns exactly the union of those four sets, in
    insertion order, with the per-document matched-tag total so the
    caller can recompute the exact bound in Python (never SQL floats).
    """

    vocabulary: Tuple[str, ...]
    allows_text: bool
    dtd_root: str
    max_depth: int


class CandidateRow(NamedTuple):
    """One candidate's persisted profile, as the bound consumes it."""

    total_tags: int
    matched: int
    text_count: int
    weight: float
    height: int
    root_tag: str


@runtime_checkable
class DocumentStore(Protocol):
    """The storage contract behind :class:`~repro.classification.repository.Repository`.

    Implementations must preserve insertion order and must not copy
    semantics: a drained document is *gone* from the store (disk-backed
    stores return structurally identical re-parsed documents).
    """

    def add(self, document: Document) -> None:
        """Append one document."""

    def add_many(self, documents: Iterable[Document]) -> None:
        """Append documents in order — the bulk-ingestion contract.

        Semantically identical to looping :meth:`add`; backends batch
        the durability work (one flush, one transaction) where they
        can.  The default loops :meth:`add`.
        """
        for document in documents:
            self.add(document)

    def __len__(self) -> int:
        """Number of documents currently held."""

    def __iter__(self) -> Iterator[Document]:
        """Iterate the held documents in insertion order (no removal)."""

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        """Remove and return matching documents (all when ``accepts`` is
        ``None``); non-matching documents stay, in order."""

    def clear(self) -> None:
        """Discard every held document."""


class MemoryStore:
    """The in-RAM store — a plain ordered list (the seed behaviour)."""

    def __init__(self) -> None:
        self._documents: List[Document] = []

    def add(self, document: Document) -> None:
        self._documents.append(document)

    def add_many(self, documents: Iterable[Document]) -> None:
        self._documents.extend(documents)

    @contextmanager
    def bulk(self) -> Iterator["MemoryStore"]:
        """No deferred durability work in RAM — a no-op window."""
        yield self

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        if accepts is None:
            drained = self._documents
            self._documents = []
            return drained
        drained: List[Document] = []
        remaining: List[Document] = []
        for document in self._documents:
            (drained if accepts(document) else remaining).append(document)
        self._documents = remaining
        return drained

    def clear(self) -> None:
        self._documents.clear()

    def __repr__(self) -> str:
        return f"MemoryStore({len(self._documents)} documents)"


class _Segment:
    """One jsonl segment file with its live/dead record counts."""

    __slots__ = ("path", "live", "dead")

    def __init__(self, path: str, live: int = 0, dead: int = 0) -> None:
        self.path = path
        self.live = live
        self.dead = dead

    @property
    def records(self) -> int:
        return self.live + self.dead


class JsonlStore:
    """A spill-to-disk store: one ``[id, xml]`` JSON record per line
    across a compacting sequence of segment files.

    Documents are serialized on :meth:`add` and re-parsed on access, so
    only per-segment counts and the tombstone set live in RAM; a
    million-document repository costs files, not a heap.  Appends land
    in the *active* segment (``path`` itself at first, then
    ``path.seg1``, ``path.seg2``, … sealed every ``segment_records``
    records), through a lazily-opened handle held until :meth:`close`.

    Predicate drains never rewrite the whole repository: matched record
    ids are appended to a sidecar tombstone log (``path.tombstones``)
    and skipped on every later read.  Whenever a segment's tombstoned
    fraction reaches ``compact_ratio`` the segment alone is rewritten —
    kept lines copied verbatim to ``<segment>.compact-tmp``, which
    atomically replaces the segment — and the reclaimed ids leave the
    tombstone log, so sustained deposit/drain churn stays bounded on
    disk.  A full ``drain()`` (or :meth:`clear`) instead resets to a
    single empty base segment with no sidecar files at all.

    Crash safety: a stale ``.compact-tmp`` is discarded on open (the
    original segment is still intact), and tombstone ids whose records
    are already gone (a crash between the segment replace and the log
    rewrite) are filtered out by intersecting the log with the ids
    actually on disk.  Record ids are embedded, monotone, and never
    reused; legacy single-file stores (plain JSON-string lines) are
    migrated in place on first open.

    When ``path`` is omitted a private temporary file is created and
    removed again by :meth:`close`.  Inside a :meth:`bulk` window the
    per-add flush is deferred until the window closes.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        segment_records: int = 4096,
        compact_ratio: float = 0.5,
    ) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-repository-", suffix=".jsonl")
            os.close(handle)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        self.segment_records = max(1, int(segment_records))
        self.compact_ratio = compact_ratio
        self._count = 0
        self._next_id = 0
        self._append: Optional[TextIO] = None
        self._bulk_depth = 0
        self._bulk_adds = 0
        self._counters = None
        self._tombstones: Set[int] = set()
        self._segments: List[_Segment] = []
        self._load()

    # -- open/resume ----------------------------------------------------

    @property
    def _tombstone_path(self) -> str:
        return self.path + ".tombstones"

    def _load(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        base = os.path.basename(self.path)
        seg_pattern = re.compile(re.escape(base) + r"\.seg(\d+)$")
        numbered: List[Tuple[int, str]] = []
        for name in os.listdir(directory):
            full = os.path.join(directory, name)
            if name.startswith(base) and name.endswith(".compact-tmp"):
                # a compaction that crashed before its os.replace — the
                # original segment is intact, the partial copy is noise
                os.remove(full)
            else:
                match = seg_pattern.fullmatch(name)
                if match:
                    numbered.append((int(match.group(1)), full))
        if not os.path.exists(self.path):
            # make the base segment exist so reads never special-case
            open(self.path, "w", encoding="utf-8").close()
        seg_paths = [self.path] + [p for _, p in sorted(numbered)]

        raw_tombstones: Set[int] = set()
        if os.path.exists(self._tombstone_path):
            with open(self._tombstone_path, "r", encoding="utf-8") as log:
                for line in log:
                    stripped = line.strip()
                    if stripped:
                        raw_tombstones.add(int(stripped))

        segments: List[_Segment] = []
        present: Set[int] = set()
        max_id = -1
        legacy = False
        for seg_path in seg_paths:
            segment = _Segment(seg_path)
            with open(seg_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    value = json.loads(stripped)
                    if isinstance(value, list):
                        rec_id = int(value[0])
                        present.add(rec_id)
                        if rec_id > max_id:
                            max_id = rec_id
                        if rec_id in raw_tombstones:
                            segment.dead += 1
                        else:
                            segment.live += 1
                    else:
                        legacy = True
                        segment.live += 1
            segments.append(segment)

        if legacy:
            self._assign_legacy_ids(seg_paths, max_id)
            self._load()  # exactly one more pass: everything embedded now
            return

        self._segments = segments
        self._tombstones = raw_tombstones & present
        self._next_id = max_id + 1
        self._count = sum(segment.live for segment in segments)
        if raw_tombstones - self._tombstones:
            # stale ids from a compaction interrupted before its log
            # rewrite — their records are gone, drop them from the log
            self._rewrite_tombstone_log()

    def _assign_legacy_ids(self, seg_paths: Sequence[str], max_id: int) -> None:
        """One-time migration: plain JSON-string lines gain embedded ids."""
        next_id = max_id + 1
        for seg_path in seg_paths:
            entries: List[str] = []
            dirty = False
            with open(seg_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    value = json.loads(stripped)
                    if isinstance(value, list):
                        entries.append(stripped + "\n")
                    else:
                        entries.append(json.dumps([next_id, value]) + "\n")
                        next_id += 1
                        dirty = True
            if dirty:
                tmp = seg_path + ".compact-tmp"
                with open(tmp, "w", encoding="utf-8") as out:
                    out.writelines(entries)
                os.replace(tmp, seg_path)

    # -- write path -----------------------------------------------------

    def set_counters(self, counters) -> None:
        """Attach a :class:`~repro.perf.counters.PerfCounters` so
        compaction and batch-flush activity is observable."""
        self._counters = counters

    def _close_append(self) -> None:
        # after os.replace the old handle would write to a deleted
        # inode, so every path that replaces/truncates a segment closes
        # the append handle first
        if self._append is not None:
            self._append.close()
            self._append = None

    def _seal_segment(self) -> _Segment:
        self._close_append()
        path = f"{self.path}.seg{len(self._segments)}"
        open(path, "w", encoding="utf-8").close()
        segment = _Segment(path)
        self._segments.append(segment)
        return segment

    def add(self, document: Document) -> None:
        xml = serialize_document(document, xml_declaration=False)
        segment = self._segments[-1]
        if segment.records >= self.segment_records:
            segment = self._seal_segment()
        if self._append is None:
            self._append = open(segment.path, "a", encoding="utf-8")
        self._append.write(json.dumps([self._next_id, xml]) + "\n")
        if self._bulk_depth == 0:
            # keep on-disk state current so concurrent readers (resume,
            # snapshots taken via a second store on the same path) see it
            self._append.flush()
        else:
            self._bulk_adds += 1
        segment.live += 1
        self._next_id += 1
        self._count += 1

    def add_many(self, documents: Iterable[Document]) -> None:
        with self.bulk():
            for document in documents:
                self.add(document)

    @contextmanager
    def bulk(self) -> Iterator["JsonlStore"]:
        """Defer the per-add flush until the outermost window closes."""
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                if self._append is not None:
                    self._append.flush()
                if self._bulk_adds > 1 and self._counters is not None:
                    self._counters.ingest_batch_commits += 1
                self._bulk_adds = 0

    # -- read path ------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def _read_segment(self, path: str) -> Iterator[Tuple[int, str]]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                rec_id, xml = json.loads(stripped)
                yield int(rec_id), xml

    def __iter__(self) -> Iterator[Document]:
        if self._append is not None:
            self._append.flush()
        for segment in self._segments:
            for rec_id, xml in self._read_segment(segment.path):
                if rec_id not in self._tombstones:
                    yield parse_document(xml)

    # -- drain + compaction ---------------------------------------------

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        self._close_append()
        if accepts is None:
            drained = list(self)
            self.clear()
            return drained
        drained: List[Document] = []
        fresh: List[int] = []
        for segment in self._segments:
            for rec_id, xml in self._read_segment(segment.path):
                if rec_id in self._tombstones:
                    continue
                document = parse_document(xml)
                if accepts(document):
                    drained.append(document)
                    fresh.append(rec_id)
                    segment.live -= 1
                    segment.dead += 1
        if fresh:
            # tombstones are durable before any segment is rewritten, so
            # a crash at any point never resurrects a drained document
            with open(self._tombstone_path, "a", encoding="utf-8") as log:
                log.writelines(f"{rec_id}\n" for rec_id in fresh)
            self._tombstones.update(fresh)
            self._count -= len(fresh)
            self._maybe_compact()
        return drained

    def _maybe_compact(self) -> None:
        compacted = False
        for segment in self._segments:
            if segment.dead and segment.dead / segment.records >= self.compact_ratio:
                self._compact_segment(segment)
                compacted = True
        if compacted:
            self._rewrite_tombstone_log()

    def _compact_segment(self, segment: _Segment) -> None:
        if segment is self._segments[-1]:
            self._close_append()
        old_size = os.path.getsize(segment.path)
        tmp = segment.path + ".compact-tmp"
        dropped: Set[int] = set()
        with open(segment.path, "r", encoding="utf-8") as source, open(
            tmp, "w", encoding="utf-8"
        ) as keep:
            for line in source:
                stripped = line.strip()
                if not stripped:
                    continue
                rec_id = int(json.loads(stripped)[0])
                if rec_id in self._tombstones:
                    dropped.add(rec_id)
                else:
                    keep.write(stripped + "\n")
        os.replace(tmp, segment.path)
        self._tombstones -= dropped
        segment.dead = 0
        if self._counters is not None:
            self._counters.segments_compacted += 1
            self._counters.compaction_bytes_reclaimed += max(
                0, old_size - os.path.getsize(segment.path)
            )

    def _rewrite_tombstone_log(self) -> None:
        if not self._tombstones:
            if os.path.exists(self._tombstone_path):
                os.remove(self._tombstone_path)
            return
        tmp = self._tombstone_path + ".compact-tmp"
        with open(tmp, "w", encoding="utf-8") as log:
            log.writelines(f"{rec_id}\n" for rec_id in sorted(self._tombstones))
        os.replace(tmp, self._tombstone_path)

    # -- lifecycle ------------------------------------------------------

    def disk_usage(self) -> int:
        """Total bytes across every segment and the tombstone log."""
        total = 0
        for segment in self._segments:
            if os.path.exists(segment.path):
                total += os.path.getsize(segment.path)
        if os.path.exists(self._tombstone_path):
            total += os.path.getsize(self._tombstone_path)
        return total

    def clear(self) -> None:
        self._close_append()
        for segment in self._segments[1:]:
            if os.path.exists(segment.path):
                os.remove(segment.path)
        open(self.path, "w", encoding="utf-8").close()
        if os.path.exists(self._tombstone_path):
            os.remove(self._tombstone_path)
        self._segments = [_Segment(self.path)]
        self._tombstones = set()
        self._count = 0
        # record ids stay monotone across a clear: a resurrected
        # tombstone from a crashed rewrite can never hit a new record

    def close(self) -> None:
        """Delete every backing file if this store created the path."""
        self._close_append()
        if self._owns_path:
            for segment in self._segments:
                if os.path.exists(segment.path):
                    os.remove(segment.path)
            if os.path.exists(self._tombstone_path):
                os.remove(self._tombstone_path)
        self._count = 0

    def __repr__(self) -> str:
        return (
            f"JsonlStore({self._count} documents in {len(self._segments)} "
            f"segments at {self.path!r})"
        )


class SqliteStore:
    """A spill-to-disk store with a persistent inverted tag index.

    Each document is persisted alongside its :class:`DocumentProfile`
    (tag vocabulary with counts, text-leaf count, weight, height, root
    tag) under a monotonically increasing insertion id.  The ``tags``
    table is the inverted tag→document index that lets the pruned
    post-evolution drain select candidate documents with an index query
    (:meth:`candidates`) instead of scanning every document.

    Opening an existing path resumes it — the index is already on disk,
    so resume costs a row count, not a rebuild.  When ``path`` is
    omitted a private temporary database is created and removed again
    by :meth:`close`.

    Write-path policy: ``commit_every`` inserts share one transaction
    (1 = the historical commit-per-add), :meth:`add_many` and
    :meth:`bulk` windows always commit once at the end, and
    ``vacuum_every`` > 0 runs ``VACUUM`` after every that-many removal
    operations (``remove``/``clear``) so sustained churn hands pages
    back to the filesystem.  Reads on this store's own connection
    always see pending inserts, and :meth:`close` commits them.
    """

    #: advertises the indexed-drain capability (duck-typed by DrainStage)
    supports_indexed_drain = True

    _SCHEMA = (
        """
        CREATE TABLE IF NOT EXISTS documents (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            xml TEXT NOT NULL,
            total_tags INTEGER NOT NULL,
            text_count INTEGER NOT NULL,
            weight REAL NOT NULL,
            height INTEGER NOT NULL,
            root_tag TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS tags (
            doc_id INTEGER NOT NULL REFERENCES documents(id) ON DELETE CASCADE,
            tag TEXT NOT NULL,
            count INTEGER NOT NULL,
            PRIMARY KEY (tag, doc_id)
        ) WITHOUT ROWID
        """,
        "CREATE INDEX IF NOT EXISTS idx_tags_doc ON tags(doc_id)",
        "CREATE INDEX IF NOT EXISTS idx_documents_height ON documents(height)",
        "CREATE INDEX IF NOT EXISTS idx_documents_root ON documents(root_tag)",
        "CREATE INDEX IF NOT EXISTS idx_documents_text ON documents(text_count)",
    )

    def __init__(
        self,
        path: Optional[str] = None,
        commit_every: int = 1,
        vacuum_every: int = 0,
    ) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-repository-", suffix=".sqlite")
            os.close(handle)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        self.commit_every = max(1, int(commit_every))
        self.vacuum_every = max(0, int(vacuum_every))
        self._pending = 0
        self._bulk_depth = 0
        self._removal_ops = 0
        self._counters = None
        # check_same_thread=False: the store is handed between threads
        # whose access is already externally serialized (parallel-batch
        # drains, serve mode's single-writer executor) — never used from
        # two threads at once, so sqlite's per-thread pinning would only
        # forbid safe usage
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute("PRAGMA foreign_keys = ON")
        # committed transactions survive a *process* crash either way;
        # synchronous=OFF only trades OS-crash durability for not
        # paying an fsync per deposit, which is the right trade for a
        # re-buildable repository spill
        self._connection.execute("PRAGMA synchronous = OFF")
        for statement in self._SCHEMA:
            self._connection.execute(statement)
        self._connection.commit()
        row = self._connection.execute("SELECT COUNT(*) FROM documents").fetchone()
        self._count = int(row[0])

    # -- plain DocumentStore contract ----------------------------------

    def set_counters(self, counters) -> None:
        """Attach a :class:`~repro.perf.counters.PerfCounters` so batch
        commits are observable."""
        self._counters = counters

    def _insert(self, document: Document) -> None:
        xml = serialize_document(document, xml_declaration=False)
        profile = profile_document(document)
        cursor = self._connection.execute(
            "INSERT INTO documents (xml, total_tags, text_count, weight, height, root_tag)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                xml,
                profile.total_tags,
                profile.text_count,
                profile.weight,
                profile.height,
                profile.root_tag,
            ),
        )
        doc_id = cursor.lastrowid
        self._connection.executemany(
            "INSERT INTO tags (doc_id, tag, count) VALUES (?, ?, ?)",
            [(doc_id, tag, count) for tag, count in profile.tag_counts.items()],
        )
        self._pending += 1
        self._count += 1

    def _flush(self) -> None:
        if self._pending == 0:
            return
        self._connection.commit()
        if self._pending > 1 and self._counters is not None:
            self._counters.ingest_batch_commits += 1
        self._pending = 0

    def add(self, document: Document) -> None:
        self._insert(document)
        if self._bulk_depth == 0 and self._pending >= self.commit_every:
            self._flush()

    def add_many(self, documents: Iterable[Document]) -> None:
        with self.bulk():
            for document in documents:
                self._insert(document)

    @contextmanager
    def bulk(self) -> Iterator["SqliteStore"]:
        """One transaction for every insert until the outermost window
        closes.  Reads on this connection still see the pending rows."""
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._flush()

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Document]:
        for (xml,) in self._connection.execute(
            "SELECT xml FROM documents ORDER BY id"
        ):
            yield parse_document(xml)

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        if accepts is None:
            drained = list(self)
            self.clear()
            return drained
        drained: List[Document] = []
        removed: List[int] = []
        # stream the cursor — a predicate drain holds O(matches) rows,
        # never the whole table; deletes wait until iteration finishes
        # so the cursor is never invalidated mid-scan
        for doc_id, xml in self._connection.execute(
            "SELECT id, xml FROM documents ORDER BY id"
        ):
            document = parse_document(xml)
            if accepts(document):
                drained.append(document)
                removed.append(doc_id)
        if removed:
            self.remove(removed)
        return drained

    def _after_removal(self) -> None:
        self._removal_ops += 1
        if self.vacuum_every and self._removal_ops % self.vacuum_every == 0:
            self._connection.execute("VACUUM")

    def clear(self) -> None:
        self._connection.execute("DELETE FROM tags")
        self._connection.execute("DELETE FROM documents")
        self._connection.commit()
        self._pending = 0
        self._count = 0
        self._after_removal()

    def close(self) -> None:
        """Commit pending inserts and close; delete the file if owned."""
        self._flush()
        self._connection.close()
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)
        self._count = 0

    # -- indexed capability --------------------------------------------

    def index_rows(self) -> int:
        """Number of rows in the inverted tag index (snapshot metadata)."""
        row = self._connection.execute("SELECT COUNT(*) FROM tags").fetchone()
        return int(row[0])

    def index_metadata(self) -> Dict[str, object]:
        """Index description persisted into format-3 snapshots."""
        return {
            "kind": "tag-vocabulary",
            "rows": self.index_rows(),
            "documents": self._count,
        }

    def candidates(self, query: DrainQuery) -> List[Tuple[int, CandidateRow]]:
        """The sound candidate set for one DTD's pruned drain.

        Returns ``(insertion id, profile row)`` pairs in insertion
        order for exactly the documents matching at least one
        :class:`DrainQuery` condition; every other document provably
        has acceptance bound 0.0.  ``matched`` is the summed count of
        document tags inside the DTD vocabulary — an exact integer, so
        the caller reproduces the scan path's bound arithmetic
        bit-for-bit in Python.
        """
        connection = self._connection
        connection.execute(
            "CREATE TEMP TABLE IF NOT EXISTS drain_vocab (tag TEXT PRIMARY KEY)"
        )
        connection.execute("DELETE FROM drain_vocab")
        connection.executemany(
            "INSERT OR IGNORE INTO drain_vocab (tag) VALUES (?)",
            [(tag,) for tag in query.vocabulary],
        )
        rows = connection.execute(
            """
            SELECT d.id, d.total_tags, COALESCE(m.matched, 0), d.text_count,
                   d.weight, d.height, d.root_tag
            FROM documents d
            JOIN (
                SELECT DISTINCT t.doc_id AS id
                FROM tags t JOIN drain_vocab v ON v.tag = t.tag
                UNION SELECT id FROM documents WHERE height >= :max_depth
                UNION SELECT id FROM documents WHERE root_tag = :root
                UNION SELECT id FROM documents WHERE text_count > 0 AND :allows_text
            ) hits ON hits.id = d.id
            LEFT JOIN (
                SELECT t.doc_id, SUM(t.count) AS matched
                FROM tags t JOIN drain_vocab v ON v.tag = t.tag
                GROUP BY t.doc_id
            ) m ON m.doc_id = d.id
            ORDER BY d.id
            """,
            {
                "max_depth": query.max_depth,
                "root": query.dtd_root,
                "allows_text": 1 if query.allows_text else 0,
            },
        ).fetchall()
        connection.execute("DELETE FROM drain_vocab")
        return [
            (
                int(doc_id),
                CandidateRow(
                    total_tags=int(total),
                    matched=int(matched),
                    text_count=int(text),
                    weight=float(weight),
                    height=int(height),
                    root_tag=root_tag,
                ),
            )
            for doc_id, total, matched, text, weight, height, root_tag in rows
        ]

    def fetch(self, ids: Sequence[int]) -> List[Document]:
        """Parse and return the documents with the given insertion ids,
        in insertion-id order (one batched query per 500 ids)."""
        documents: List[Document] = []
        ids = sorted(ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ",".join("?" for _ in chunk)
            for _, xml in self._connection.execute(
                f"SELECT id, xml FROM documents WHERE id IN ({placeholders})"
                " ORDER BY id",
                chunk,
            ):
                documents.append(parse_document(xml))
        return documents

    def remove(self, ids: Sequence[int]) -> None:
        """Delete the documents (and their index rows) with these ids;
        every other document keeps its id, hence its insertion order."""
        removed = 0
        ids = list(ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ",".join("?" for _ in chunk)
            self._connection.execute(
                f"DELETE FROM tags WHERE doc_id IN ({placeholders})", chunk
            )
            cursor = self._connection.execute(
                f"DELETE FROM documents WHERE id IN ({placeholders})", chunk
            )
            removed += cursor.rowcount
        self._connection.commit()
        self._pending = 0
        self._count -= removed
        self._after_removal()

    def __repr__(self) -> str:
        return f"SqliteStore({self._count} documents at {self.path!r})"


#: the named backends ``make_store`` (and the CLI ``--store`` flag) accept
STORE_KINDS = ("memory", "jsonl", "sqlite")


def store_kind(store: DocumentStore) -> str:
    """The snapshot tag for a store instance.

    Unknown third-party backends still persist as ``memory`` (the
    documents themselves are always inlined in the snapshot, so nothing
    is lost) — but loudly, so snapshots don't silently lie about their
    store: a :class:`RuntimeWarning` carries the backend's repr.
    """
    if isinstance(store, SqliteStore):
        return "sqlite"
    if isinstance(store, JsonlStore):
        return "jsonl"
    if isinstance(store, MemoryStore):
        return "memory"
    warnings.warn(
        f"unknown document-store backend {store!r}: the snapshot records it "
        "as 'memory' and a load will not recreate the custom backend "
        "(pass store= explicitly when loading)",
        RuntimeWarning,
        stacklevel=2,
    )
    return "memory"


def make_store(
    spec: Union[None, str, DocumentStore] = None, path: Optional[str] = None
) -> DocumentStore:
    """Resolve a store spec: ``None``/``"memory"`` → :class:`MemoryStore`,
    ``"jsonl"`` → :class:`JsonlStore`, ``"sqlite"`` → :class:`SqliteStore`
    (each optionally at ``path``), and any :class:`DocumentStore`
    instance passes through unchanged."""
    if spec is None or spec == "memory":
        return MemoryStore()
    if spec == "jsonl":
        return JsonlStore(path)
    if spec == "sqlite":
        return SqliteStore(path)
    if isinstance(spec, str):
        raise ValueError(
            f"unknown store kind {spec!r} (expected one of {', '.join(STORE_KINDS)})"
        )
    return spec
