"""Pluggable document stores backing the repository.

The repository of Section 2 is, operationally, an ordered multiset of
documents with exactly three lifecycle operations: *deposit* (a document
no DTD describes well enough), *inspection* (iteration, for snapshots
and clustering), and *drain* (remove documents for re-classification
after an evolution).  :class:`DocumentStore` captures that contract so
the backing representation can vary without touching the pipeline:

- :class:`MemoryStore` — a plain in-process list (the seed behaviour);
- :class:`JsonlStore` — spill-to-disk, one JSON-encoded XML document per
  line, so a very large repository does not live in RAM.

Drain semantics (the single, consolidated API): ``drain(accepts=None)``
removes and returns the documents ``accepts`` matches — all of them when
``accepts`` is ``None`` — while non-matching documents stay, in order.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Iterator, List, Optional, Union

try:  # Protocol is typing-only plumbing; 3.9+ always has it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - pre-3.8 fallback, never hit
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.xmltree.document import Document
from repro.xmltree.parser import parse_document
from repro.xmltree.serializer import serialize_document

#: what an ``accepts`` predicate looks like
DrainPredicate = Callable[[Document], bool]


@runtime_checkable
class DocumentStore(Protocol):
    """The storage contract behind :class:`~repro.classification.repository.Repository`.

    Implementations must preserve insertion order and must not copy
    semantics: a drained document is *gone* from the store (disk-backed
    stores return structurally identical re-parsed documents).
    """

    def add(self, document: Document) -> None:
        """Append one document."""

    def __len__(self) -> int:
        """Number of documents currently held."""

    def __iter__(self) -> Iterator[Document]:
        """Iterate the held documents in insertion order (no removal)."""

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        """Remove and return matching documents (all when ``accepts`` is
        ``None``); non-matching documents stay, in order."""

    def clear(self) -> None:
        """Discard every held document."""


class MemoryStore:
    """The in-RAM store — a plain ordered list (the seed behaviour)."""

    def __init__(self) -> None:
        self._documents: List[Document] = []

    def add(self, document: Document) -> None:
        self._documents.append(document)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        if accepts is None:
            drained = self._documents
            self._documents = []
            return drained
        drained: List[Document] = []
        remaining: List[Document] = []
        for document in self._documents:
            (drained if accepts(document) else remaining).append(document)
        self._documents = remaining
        return drained

    def clear(self) -> None:
        self._documents.clear()

    def __repr__(self) -> str:
        return f"MemoryStore({len(self._documents)} documents)"


class JsonlStore:
    """A spill-to-disk store: one JSON-encoded XML document per line.

    Documents are serialized on :meth:`add` and re-parsed on access, so
    only a line count lives in RAM; a million-document repository costs
    a file, not a heap.  Opening an existing path resumes it (the line
    count is recovered by scanning once).

    When ``path`` is omitted a private temporary file is created and
    removed again by :meth:`close`.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-repository-", suffix=".jsonl")
            os.close(handle)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        self._count = 0
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as lines:
                self._count = sum(1 for line in lines if line.strip())
        else:  # make the file exist so iteration/drain never special-case
            open(path, "w", encoding="utf-8").close()

    def add(self, document: Document) -> None:
        xml = serialize_document(document, xml_declaration=False)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(xml) + "\n")
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Document]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    yield parse_document(json.loads(line))

    def drain(self, accepts: Optional[DrainPredicate] = None) -> List[Document]:
        documents = list(self)
        if accepts is None:
            drained, remaining = documents, []
        else:
            drained, remaining = [], []
            for document in documents:
                (drained if accepts(document) else remaining).append(document)
        with open(self.path, "w", encoding="utf-8") as handle:
            for document in remaining:
                xml = serialize_document(document, xml_declaration=False)
                handle.write(json.dumps(xml) + "\n")
        self._count = len(remaining)
        return drained

    def clear(self) -> None:
        open(self.path, "w", encoding="utf-8").close()
        self._count = 0

    def close(self) -> None:
        """Delete the backing file if this store created it."""
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)
        self._count = 0

    def __repr__(self) -> str:
        return f"JsonlStore({self._count} documents at {self.path!r})"


#: the named backends ``make_store`` (and the CLI ``--store`` flag) accept
STORE_KINDS = ("memory", "jsonl")


def store_kind(store: DocumentStore) -> str:
    """The snapshot tag for a store instance (unknown backends persist
    as ``memory`` — the documents themselves are always inlined)."""
    return "jsonl" if isinstance(store, JsonlStore) else "memory"


def make_store(
    spec: Union[None, str, DocumentStore] = None, path: Optional[str] = None
) -> DocumentStore:
    """Resolve a store spec: ``None``/``"memory"`` → :class:`MemoryStore`,
    ``"jsonl"`` → :class:`JsonlStore` (optionally at ``path``), and any
    :class:`DocumentStore` instance passes through unchanged."""
    if spec is None or spec == "memory":
        return MemoryStore()
    if spec == "jsonl":
        return JsonlStore(path)
    if isinstance(spec, str):
        raise ValueError(
            f"unknown store kind {spec!r} (expected one of {', '.join(STORE_KINDS)})"
        )
    return spec
