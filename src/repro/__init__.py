"""repro — a reproduction of Bertino, Guerrini, Mesiti & Tosetto,
*Evolving a Set of DTDs According to a Dynamic Set of XML Documents*
(EDBT 2002 Workshops, LNCS 2490, pp. 45–66).

The library adapts a set of DTDs to the documents actually flowing into
an XML source: documents are classified by structural similarity,
their deviations recorded as aggregates inside *extended DTDs*, and —
when deviations accumulate — each element declaration is kept,
restricted, rebuilt (via association rules and heuristic policies) or
OR-merged, at per-element granularity.

Quickstart::

    from repro import XMLSource, EvolutionConfig, parse_dtd, parse_document

    source = XMLSource(
        [parse_dtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", name="T")],
        EvolutionConfig(sigma=0.3, tau=0.1, psi=0.2, mu=0.05),
    )
    source.process(parse_document("<a><b>x</b><c>new</c></a>"))
    ...
    source.dtd("T")        # the current (possibly evolved) DTD

Subpackages: :mod:`repro.xmltree` and :mod:`repro.dtd` (substrates),
:mod:`repro.similarity` (classification measure), :mod:`repro.mining`
(association rules), :mod:`repro.core` (recording + evolution + the
pipeline engine), :mod:`repro.pipeline` (the staged Figure-1 loop and
its lifecycle event bus), :mod:`repro.classification` (classifier,
repository, pluggable document stores), :mod:`repro.generators`,
:mod:`repro.baselines`, :mod:`repro.metrics`.
"""

from repro.xmltree import (
    Document,
    Element,
    Text,
    parse_document,
    parse_fragment,
    serialize_document,
)
from repro.xmltree.document import element
from repro.dtd import (
    DTD,
    ElementDecl,
    Validator,
    parse_dtd,
    parse_content_model,
    serialize_dtd,
    serialize_content_model,
    simplify,
)
from repro.similarity import (
    SimilarityConfig,
    evaluate_document,
    similarity,
    local_similarity,
)
from repro.classification import Classifier, Repository
from repro.classification.stores import DocumentStore, JsonlStore, MemoryStore
from repro.core import (
    ExtendedDTD,
    Recorder,
    Window,
    EvolutionConfig,
    EvolutionResult,
    evolve_dtd,
    build_structure,
    XMLSource,
)
from repro.pipeline import EventBus, Pipeline
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Document",
    "Element",
    "Text",
    "element",
    "parse_document",
    "parse_fragment",
    "serialize_document",
    "DTD",
    "ElementDecl",
    "Validator",
    "parse_dtd",
    "parse_content_model",
    "serialize_dtd",
    "serialize_content_model",
    "simplify",
    "SimilarityConfig",
    "evaluate_document",
    "similarity",
    "local_similarity",
    "Classifier",
    "Repository",
    "DocumentStore",
    "MemoryStore",
    "JsonlStore",
    "EventBus",
    "Pipeline",
    "ExtendedDTD",
    "Recorder",
    "Window",
    "EvolutionConfig",
    "EvolutionResult",
    "evolve_dtd",
    "build_structure",
    "XMLSource",
    "ReproError",
    "__version__",
]
